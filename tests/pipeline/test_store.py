"""Tests for the content-addressed on-disk store."""

import numpy as np

from repro.pipeline.store import CacheStore


class TestJsonRoundTrip:
    def test_put_get(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put_json("cells", "ab" * 8, {"ppl": 1.5, "divergence": 0.01})
        assert store.get_json("cells", "ab" * 8) == {"ppl": 1.5, "divergence": 0.01}

    def test_miss_returns_none(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.get_json("cells", "ff" * 8) is None
        assert store.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        key = "cd" * 8
        path = store.path_for("cells", key, ".json")
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert store.get_json("cells", key) is None

    def test_stats(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put_json("cells", "aa" * 8, {"x": 1})
        store.get_json("cells", "aa" * 8)
        store.get_json("cells", "bb" * 8)
        s = store.stats()
        assert s["hits"] == 1 and s["misses"] == 1 and s["hit_rate"] == 0.5


class TestArrayRoundTrip:
    def test_byte_identical(self, tmp_path, rng):
        store = CacheStore(tmp_path)
        arrays = {
            "codes": rng.integers(0, 255, size=(16, 32), dtype=np.uint8),
            "scales": rng.standard_normal((16, 1)),
        }
        store.put_arrays("packed", "ee" * 8, arrays)
        out = store.get_arrays("packed", "ee" * 8)
        assert set(out) == {"codes", "scales"}
        for name in arrays:
            assert out[name].dtype == arrays[name].dtype
            assert out[name].tobytes() == arrays[name].tobytes()

    def test_overwrite_is_atomic_replace(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put_arrays("packed", "11" * 8, {"a": np.zeros(4)})
        store.put_arrays("packed", "11" * 8, {"a": np.ones(4)})
        out = store.get_arrays("packed", "11" * 8)
        np.testing.assert_array_equal(out["a"], np.ones(4))


class TestDisabledStore:
    def test_never_reads_or_writes(self, tmp_path):
        store = CacheStore(tmp_path, enabled=False)
        store.put_json("cells", "aa" * 8, {"x": 1})
        assert store.get_json("cells", "aa" * 8) is None
        store.put_arrays("packed", "bb" * 8, {"a": np.zeros(2)})
        assert store.get_arrays("packed", "bb" * 8) is None
        # Nothing on disk.
        assert list(tmp_path.rglob("*.json")) == []
        assert list(tmp_path.rglob("*.npz")) == []
