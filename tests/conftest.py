"""Shared fixtures for the test suite.

(The pipeline-cache isolation fixture lives in the repo-root
``conftest.py`` so it also covers ``benchmarks/``.)
"""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def weights(rng):
    """A small Gaussian weight matrix with group structure."""
    return rng.standard_normal((16, 256))


@pytest.fixture
def heavy_weights(rng):
    """A heavy-tailed weight matrix (outlier-rich)."""
    w = rng.standard_t(3, size=(16, 256))
    w[rng.random(w.shape) < 0.003] *= 12.0
    return w
