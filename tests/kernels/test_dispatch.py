"""Dispatcher: overrides, fallbacks, tuned routing, warn-once logging."""

import logging

import numpy as np
import pytest

from repro.hw.pe import PEConfig
from repro.kernels import HAVE_NUMBA, KernelDispatcher, get_backend, reset_dispatcher
from repro.kernels.base import GemmTask
from repro.kernels.dispatch import get_dispatcher
from repro.pipeline.store import CacheStore
from repro.quant.config import QuantConfig
from repro.quant.packing import pack_tensor


def _task(rng, dtype="bitmod_fp4", m=2, k=3, d=64, pe_config=None):
    cfg = QuantConfig(dtype=dtype, group_size=32)
    return GemmTask(
        x=rng.standard_normal((m, d)).astype(np.float16),
        packed=pack_tensor(rng.standard_normal((k, d)), cfg),
        dtype=cfg.resolve_dtype(),
        pe_config=pe_config or PEConfig(),
    )


@pytest.fixture(autouse=True)
def _fresh_dispatcher():
    yield
    reset_dispatcher()


class TestResolution:
    def test_explicit_backend_wins(self, rng, tmp_path):
        disp = KernelDispatcher(store=CacheStore(root=tmp_path))
        b, _tile = disp.resolve(_task(rng), backend="numpy")
        assert b.name == "numpy"

    def test_unknown_backend_fails_loudly(self, rng, tmp_path):
        disp = KernelDispatcher(store=CacheStore(root=tmp_path))
        with pytest.raises(ValueError, match="unknown kernel backend"):
            disp.resolve(_task(rng), backend="not-a-backend")

    def test_env_override(self, rng, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
        disp = KernelDispatcher(store=CacheStore(root=tmp_path))
        b, _tile = disp.resolve(_task(rng))
        assert b.name == "reference"

    def test_default_is_best_static_without_tuning(self, rng, tmp_path):
        disp = KernelDispatcher(store=CacheStore(root=tmp_path))
        b, _tile = disp.resolve(_task(rng))
        expected = "numba" if HAVE_NUMBA else "fused"
        assert b.name == expected
        assert disp.tuner.trials_run == 0  # no search unless enabled

    def test_exotic_pe_config_falls_back_to_numpy(self, rng, tmp_path):
        """Non-default accumulator widths only run on the integer-exact
        numpy backend; the float32 backends must decline."""
        disp = KernelDispatcher(store=CacheStore(root=tmp_path))
        task = _task(rng, pe_config=PEConfig(acc_mantissa_bits=20))
        b, _tile = disp.resolve(task)
        assert b.name == "numpy"

    def test_unsupporting_override_falls_back(self, rng, tmp_path):
        disp = KernelDispatcher(store=CacheStore(root=tmp_path))
        task = _task(rng, pe_config=PEConfig(acc_mantissa_bits=20))
        b, _tile = disp.resolve(task, backend="fused")
        assert b.name == "numpy"

    def test_autotune_search_then_memoized_routing(self, rng, tmp_path):
        store = CacheStore(root=tmp_path)
        disp = KernelDispatcher(store=store, autotune=True)
        task = _task(rng)
        b1, tile1 = disp.resolve(task)
        assert disp.tuner.trials_run > 0
        # Same shape-class: in-process memo, no second search.
        trials = disp.tuner.trials_run
        b2, tile2 = disp.resolve(_task(rng))
        assert disp.tuner.trials_run == trials
        assert (b2.name, tile2) == (b1.name, tile1)
        # A fresh dispatcher over the same store replays the record.
        warm = KernelDispatcher(store=store, autotune=True)
        b3, tile3 = warm.resolve(_task(rng))
        assert warm.tuner.trials_run == 0
        assert (b3.name, tile3) == (b1.name, tile1)

    def test_autotune_env_flag(self, rng, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_AUTOTUNE", "1")
        disp = KernelDispatcher(store=CacheStore(root=tmp_path))
        assert disp.autotune_enabled
        disp.resolve(_task(rng))
        assert disp.tuner.trials_run > 0


class TestRun:
    def test_run_counts_dispatches(self, rng, tmp_path):
        from repro import obs

        obs.reset()
        disp = KernelDispatcher(store=CacheStore(root=tmp_path))
        res = disp.run(_task(rng), backend="numpy")
        assert res.output.shape == (2, 3)
        counters = obs.snapshot()["counters"]
        assert counters["kernels.dispatch{backend=numpy}"] == 1

    def test_all_resolved_backends_agree(self, rng, tmp_path):
        disp = KernelDispatcher(store=CacheStore(root=tmp_path))
        task = _task(rng)
        ref = get_backend("reference").run(task)
        for name in ("numpy", "fused"):
            res = disp.run(task, backend=name)
            np.testing.assert_array_equal(res.output, ref.output)
            assert res.pe_cycles == ref.pe_cycles


@pytest.fixture()
def _propagating_repro_logs():
    """Undo ``obs.setup_logging``'s propagate=False so caplog's
    root-attached handler sees ``repro.*`` records (order-independent)."""
    root = logging.getLogger("repro")
    before = root.propagate
    root.propagate = True
    yield
    root.propagate = before


@pytest.mark.usefixtures("_propagating_repro_logs")
class TestWarnings:
    @pytest.mark.skipif(HAVE_NUMBA, reason="needs a numba-less environment")
    def test_numba_missing_warns_once(self, rng, tmp_path, caplog):
        disp = reset_dispatcher(store=CacheStore(root=tmp_path))
        with caplog.at_level(logging.WARNING, logger="repro.kernels.dispatch"):
            disp.resolve(_task(rng))
            disp.resolve(_task(rng, dtype="int6_sym"))
        warnings = [
            r for r in caplog.records if "numba is not installed" in r.getMessage()
        ]
        assert len(warnings) == 1
        assert "falls back" in warnings[0].getMessage()

    def test_unavailable_override_warns_and_falls_back(
        self, rng, tmp_path, caplog
    ):
        if HAVE_NUMBA:
            pytest.skip("needs a numba-less environment")
        disp = reset_dispatcher(store=CacheStore(root=tmp_path))
        with caplog.at_level(logging.WARNING, logger="repro.kernels.dispatch"):
            b, _tile = disp.resolve(_task(rng), backend="numba")
        assert b.name == "fused"
        assert any(
            "cannot run this task" in r.getMessage() for r in caplog.records
        )


class TestProcessWide:
    def test_get_dispatcher_is_singleton(self):
        disp = reset_dispatcher()
        assert get_dispatcher() is disp
        assert reset_dispatcher() is not disp
