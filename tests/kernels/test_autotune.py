"""Autotuner: cold search, warm memoized lookup, corruption recovery."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.hw.pe import PEConfig
from repro.kernels import TUNE_KIND, Autotuner, available_backends, shape_class
from repro.kernels.base import GemmTask
from repro.pipeline.store import CacheStore
from repro.quant.config import QuantConfig
from repro.quant.packing import pack_tensor


def _task(rng, dtype="bitmod_fp4", m=2, k=3, d=64, group_size=32):
    cfg = QuantConfig(dtype=dtype, group_size=group_size)
    w = rng.standard_normal((k, d))
    x = rng.standard_normal((m, d)).astype(np.float16)
    return GemmTask(
        x=x,
        packed=pack_tensor(w, cfg),
        dtype=cfg.resolve_dtype(),
        pe_config=PEConfig(),
    )


class TestShapeClass:
    def test_buckets_to_powers_of_two(self):
        assert shape_class(8, 512, 512) == "m8_n512_k512"
        assert shape_class(5, 300, 1) == "m8_n512_k1"

    def test_nearby_shapes_share_a_class(self):
        assert shape_class(7, 500, 260) == shape_class(8, 512, 512)


class TestAutotuner:
    def test_cold_search_then_warm_lookup(self, rng, tmp_path):
        store = CacheStore(root=tmp_path)
        task = _task(rng)

        cold = Autotuner(store=store, repeats=1)
        rec = cold.decide(task)
        assert rec is not None
        assert cold.trials_run > 0
        assert rec["backend"] in available_backends()
        assert rec["backend"] != "reference"
        assert len(rec["trials"]) == cold.trials_run
        # The winner is the fastest timed candidate.
        fastest = min(rec["trials"], key=lambda t: t["seconds"])
        assert rec["backend"] == fastest["backend"]

        warm = Autotuner(store=store, repeats=1)
        warm_rec = warm.decide(task)
        assert warm.trials_run == 0
        assert warm_rec["backend"] == rec["backend"]
        assert warm_rec["tile"] == rec["tile"]

    def test_lookup_without_search_is_a_miss(self, rng, tmp_path):
        tuner = Autotuner(store=CacheStore(root=tmp_path))
        task = _task(rng)
        assert tuner.decide(task, allow_search=False) is None
        assert tuner.trials_run == 0

    def test_corrupted_record_quarantined_and_researched(self, rng, tmp_path):
        store = CacheStore(root=tmp_path)
        task = _task(rng)
        tuner = Autotuner(store=store, repeats=1)
        tuner.search(task)

        # Flip bytes in the stored record: the integrity envelope must
        # catch it, quarantine the entry, and the next decide re-search.
        path = store.path_for(TUNE_KIND, tuner.key(task), ".json")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2] + b"\xff\xfe" + raw[len(raw) // 2 :])

        fresh = Autotuner(store=store, repeats=1)
        rec = fresh.decide(task)
        assert rec is not None
        assert fresh.trials_run > 0  # re-searched, not replayed
        quarantined = list((tmp_path / "corrupt" / TUNE_KIND).glob("*.json"))
        assert len(quarantined) == 1

    def test_stale_schema_record_is_a_miss(self, rng, tmp_path):
        store = CacheStore(root=tmp_path)
        task = _task(rng)
        tuner = Autotuner(store=store, repeats=1)
        rec = dict(tuner.search(task))
        rec["schema_version"] = -1
        store.put_json(TUNE_KIND, tuner.key(task), rec)
        assert tuner.lookup(task) is None

    def test_record_for_unknown_backend_is_a_miss(self, rng, tmp_path):
        store = CacheStore(root=tmp_path)
        task = _task(rng)
        tuner = Autotuner(store=store, repeats=1)
        rec = dict(tuner.search(task))
        rec["backend"] = "no-such-backend"
        store.put_json(TUNE_KIND, tuner.key(task), rec)
        assert tuner.lookup(task) is None

    def test_key_covers_dtype_and_shape_class(self, rng, tmp_path):
        tuner = Autotuner(store=CacheStore(root=tmp_path))
        base = _task(rng)
        assert tuner.key(base) == tuner.key(_task(rng))
        assert tuner.key(base) != tuner.key(_task(rng, dtype="int6_sym"))
        assert tuner.key(base) != tuner.key(_task(rng, m=32))

    def test_asymmetric_task_has_no_candidates(self, rng, tmp_path):
        tuner = Autotuner(store=CacheStore(root=tmp_path), repeats=1)
        task = _task(rng, dtype="int4_asym")
        # Only backends that can execute asymmetric containers would be
        # timed; none can, and the numpy backend itself raises on run —
        # so the candidate set must already be empty.
        assert tuner.search(task) is None


_WARM_SCRIPT = """
import json, sys
import numpy as np
from repro.hw.pe import PEConfig
from repro.kernels import Autotuner
from repro.kernels.base import GemmTask
from repro.quant.config import QuantConfig
from repro.quant.packing import pack_tensor

rng = np.random.default_rng(7)
cfg = QuantConfig(dtype="bitmod_fp4", group_size=32)
task = GemmTask(
    x=rng.standard_normal((2, 64)).astype(np.float16),
    packed=pack_tensor(rng.standard_normal((3, 64)), cfg),
    dtype=cfg.resolve_dtype(),
    pe_config=PEConfig(),
)
tuner = Autotuner(repeats=1)
rec = tuner.decide(task)
print(json.dumps({"trials": tuner.trials_run, "backend": rec["backend"]}))
"""


class TestProcessLevelPersistence:
    def test_second_process_performs_zero_trials(self, tmp_path):
        """Tune records persist across processes: a warm process must
        replay the stored record without a single search trial."""
        env = {
            "REPRO_CACHE_DIR": str(tmp_path),
            "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
            "PATH": "/usr/bin:/bin",
        }
        runs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", _WARM_SCRIPT],
                capture_output=True, text=True, env=env, check=True,
            )
            runs.append(json.loads(proc.stdout))
        assert runs[0]["trials"] > 0  # cold: searched
        assert runs[1]["trials"] == 0  # warm: pure replay
        assert runs[1]["backend"] == runs[0]["backend"]
