"""Bounded LRU decode cache: budget, eviction, counters, lifetime."""

import gc

import numpy as np
import pytest

from repro.kernels.cache import DecodeCache, decode_cache, reset_decode_cache


class Holder:
    """A weakref-able stand-in for a packed tensor."""


def _arr(n_bytes):
    return np.zeros(n_bytes, dtype=np.uint8)


class TestDecodeCache:
    def test_hit_requires_matching_token(self):
        cache = DecodeCache(budget_bytes=1 << 20)
        obj = Holder()
        cache.put(obj, "terms", "tok-a", _arr(16))
        assert cache.get(obj, "terms", "tok-a") is not None
        assert cache.get(obj, "terms", "tok-b") is None
        assert cache.hits == 1 and cache.misses == 1

    def test_kinds_are_independent(self):
        cache = DecodeCache(budget_bytes=1 << 20)
        obj = Holder()
        a, b = _arr(8), _arr(8)
        cache.put(obj, "terms", "t", a)
        cache.put(obj, "fused", "t", b)
        assert cache.get(obj, "terms", "t") is a
        assert cache.get(obj, "fused", "t") is b
        assert cache.stats()["entries"] == 2

    def test_lru_eviction_under_budget(self):
        cache = DecodeCache(budget_bytes=256)
        objs = [Holder() for _ in range(3)]
        for o in objs:
            cache.put(o, "terms", "t", _arr(100))
        # 3 * 100 > 256: the least recently used entry was evicted.
        assert cache.stats()["entries"] == 2
        assert cache.evictions == 1
        assert cache.get(objs[0], "terms", "t") is None
        assert cache.get(objs[2], "terms", "t") is not None
        assert cache.total_bytes <= 256

    def test_get_refreshes_lru_order(self):
        cache = DecodeCache(budget_bytes=256)
        a, b, c = Holder(), Holder(), Holder()
        cache.put(a, "terms", "t", _arr(100))
        cache.put(b, "terms", "t", _arr(100))
        cache.get(a, "terms", "t")  # a becomes most recent
        cache.put(c, "terms", "t", _arr(100))  # evicts b, not a
        assert cache.get(a, "terms", "t") is not None
        assert cache.get(b, "terms", "t") is None

    def test_oversize_value_passes_through_uncached(self):
        cache = DecodeCache(budget_bytes=64)
        obj = Holder()
        big = _arr(1000)
        assert cache.put(obj, "terms", "t", big) is big
        assert cache.stats()["entries"] == 0
        assert cache.oversize == 1

    def test_entry_dies_with_its_object(self):
        cache = DecodeCache(budget_bytes=1 << 20)
        obj = Holder()
        cache.put(obj, "terms", "t", _arr(64))
        assert cache.stats()["entries"] == 1
        del obj
        gc.collect()
        assert cache.stats()["entries"] == 0
        assert cache.total_bytes == 0

    def test_tuple_values_counted_by_total_nbytes(self):
        cache = DecodeCache(budget_bytes=100)
        obj = Holder()
        cache.put(obj, "terms", "t", (_arr(40), _arr(40)))
        assert cache.total_bytes == 80
        obj2 = Holder()
        cache.put(obj2, "terms", "t", (_arr(60), _arr(60)))  # oversize
        assert cache.oversize == 1

    def test_budget_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_MB", "2")
        assert DecodeCache().budget_bytes == 2 * 1024 * 1024
        monkeypatch.setenv("REPRO_KERNEL_CACHE_MB", "not-a-number")
        assert DecodeCache().budget_bytes == 256 * 1024 * 1024

    def test_process_wide_reset(self):
        first = reset_decode_cache(budget_bytes=123)
        assert decode_cache() is first
        assert first.budget_bytes == 123
        second = reset_decode_cache()
        assert decode_cache() is second
        assert second is not first

    def test_counters_surface_in_obs_snapshot(self):
        from repro import obs

        obs.reset()
        cache = DecodeCache(budget_bytes=1 << 20)
        obj = Holder()
        cache.get(obj, "terms", "t")
        cache.put(obj, "terms", "t", _arr(8))
        cache.get(obj, "terms", "t")
        snap = obs.snapshot()
        counters = snap["counters"]
        assert counters["kernels.decode.hits{kind=terms}"] >= 1
        assert counters["kernels.decode.misses{kind=terms}"] >= 1
        assert snap["gauges"]["kernels.decode.bytes"] == 8


class TestDecodeCacheIntegration:
    def test_term_decode_budget_zero_disables_caching(self, rng):
        from repro.hw.termtable import decode_packed_terms
        from repro.quant.config import QuantConfig
        from repro.quant.packing import pack_tensor

        cfg = QuantConfig(dtype="bitmod_fp4", group_size=32)
        packed = pack_tensor(rng.standard_normal((2, 64)), cfg)
        try:
            cache = reset_decode_cache(budget_bytes=0)
            decode_packed_terms(packed, cfg.resolve_dtype())
            assert cache.stats()["entries"] == 0
            assert cache.oversize >= 1
        finally:
            reset_decode_cache()
