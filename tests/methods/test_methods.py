"""Tests for the software-only PTQ methods."""

import numpy as np
import pytest

from repro.methods import (
    AWQ,
    GPTQ,
    OmniQuant,
    QuaRot,
    RTN,
    SmoothQuant,
    collect_calibration,
    hadamard_matrix,
    random_orthogonal,
    smooth_scales,
)
from repro.models.transformer import CausalLM
from repro.models.zoo import get_model_config
from repro.quant.config import QuantConfig, quantize_tensor


@pytest.fixture(scope="module")
def model():
    return CausalLM(get_model_config("llama-2-7b"), seed=0)


@pytest.fixture(scope="module")
def calib(model):
    return collect_calibration(model, batch=1, seq=48)


def _layer(model, calib):
    name = "layers.0.q_proj"
    return name, model.weights[name], calib[name]


def _out_err(w, w_q, x):
    return float(np.mean(((w_q - w) @ x.T) ** 2))


class TestCalibration:
    def test_covers_all_linears(self, model, calib):
        assert set(calib) == set(model.named_linears())

    def test_activation_shapes(self, model, calib):
        for name, w in model.named_linears().items():
            assert calib[name].shape[1] == w.shape[1]


class TestRTN:
    def test_matches_plain_quantize(self, model, calib):
        name, w, x = _layer(model, calib)
        cfg = QuantConfig(dtype="int4_asym")
        got = RTN(cfg).quantize_weight(name, w, x)
        np.testing.assert_array_equal(got, quantize_tensor(w, cfg).w_deq)


class TestAWQ:
    def test_no_worse_than_rtn_on_output_error(self, model, calib):
        name, w, x = _layer(model, calib)
        cfg = QuantConfig(dtype="int3_asym")
        rtn = quantize_tensor(w, cfg).w_deq
        awq = AWQ(cfg).quantize_weight(name, w, x)
        assert _out_err(w, awq, x) <= _out_err(w, rtn, x) + 1e-12

    def test_alpha_zero_only_grid_reduces_to_rtn(self, model, calib):
        name, w, x = _layer(model, calib)
        cfg = QuantConfig(dtype="int4_asym")
        awq = AWQ(cfg, alpha_grid=[0.0]).quantize_weight(name, w, x)
        np.testing.assert_allclose(awq, quantize_tensor(w, cfg).w_deq)

    def test_composes_with_bitmod(self, model, calib):
        name, w, x = _layer(model, calib)
        cfg = QuantConfig(dtype="bitmod_fp3")
        awq = AWQ(cfg).quantize_weight(name, w, x)
        assert np.isfinite(awq).all()


class TestGPTQ:
    def test_better_than_rtn_on_output_error(self, model, calib):
        name, w, x = _layer(model, calib)
        cfg = QuantConfig(dtype="int3_asym")
        rtn = quantize_tensor(w, cfg).w_deq
        gptq = GPTQ(cfg).quantize_weight(name, w, x)
        assert _out_err(w, gptq, x) < _out_err(w, rtn, x)

    def test_weight_error_may_grow_but_output_error_shrinks(self, model, calib):
        """GPTQ trades weight-space error for output-space error."""
        name, w, x = _layer(model, calib)
        cfg = QuantConfig(dtype="int3_asym")
        gptq = GPTQ(cfg).quantize_weight(name, w, x)
        assert np.isfinite(gptq).all()

    @pytest.mark.parametrize("dtype", ["int4_sym", "fp4", "bitmod_fp4"])
    def test_supports_multiple_dtypes(self, model, calib, dtype):
        name, w, x = _layer(model, calib)
        cfg = QuantConfig(dtype=dtype)
        out = GPTQ(cfg).quantize_weight(name, w, x)
        assert out.shape == w.shape and np.isfinite(out).all()


class TestOmniQuant:
    def test_no_worse_than_rtn(self, model, calib):
        name, w, x = _layer(model, calib)
        cfg = QuantConfig(dtype="int3_asym")
        rtn = quantize_tensor(w, cfg).w_deq
        omni = OmniQuant(cfg).quantize_weight(name, w, x)
        assert _out_err(w, omni, x) <= _out_err(w, rtn, x) + 1e-12

    def test_clip_grid_of_one_is_rtn(self, model, calib):
        name, w, x = _layer(model, calib)
        cfg = QuantConfig(dtype="int4_asym")
        omni = OmniQuant(cfg, clip_grid=[1.0]).quantize_weight(name, w, x)
        np.testing.assert_allclose(omni, quantize_tensor(w, cfg).w_deq)


class TestSmoothQuant:
    def test_smoothing_preserves_function(self, model):
        """Unquantized smoothed model computes the same logits."""
        sq = SmoothQuant(QuantConfig(dtype="int4_asym"))
        smoothed = sq.smooth_model(model)
        toks = np.arange(16)
        np.testing.assert_allclose(
            smoothed.logits(toks), model.logits(toks), rtol=1e-8, atol=1e-8
        )

    def test_smooth_scales_normalized(self, rng):
        x = rng.standard_normal((64, 32))
        ws = [rng.standard_normal((16, 32))]
        s = smooth_scales(x, ws)
        assert np.exp(np.mean(np.log(s))) == pytest.approx(1.0)

    def test_act_bits_enabled_on_quantized_model(self, model):
        sq = SmoothQuant(QuantConfig(dtype="int4_asym"), act_bits=8)
        q = sq.quantize_model(model)
        assert q.act_quant_bits == 8

    def test_migration_tames_act_outliers(self, model, calib):
        """After smoothing, the worst activation column shrinks."""
        name = "layers.0.q_proj"
        x = calib[name]
        sq = SmoothQuant(QuantConfig(dtype="int4_asym"))
        smoothed = sq.smooth_model(model)
        x_s = collect_calibration(smoothed, batch=1, seq=48)[name]
        assert np.max(np.abs(x_s)) < np.max(np.abs(x))


class TestQuaRot:
    def test_hadamard_orthogonal(self):
        h = hadamard_matrix(64)
        np.testing.assert_allclose(h @ h.T, np.eye(64), atol=1e-12)

    def test_hadamard_requires_pow2(self):
        with pytest.raises(ValueError):
            hadamard_matrix(48)

    def test_random_orthogonal(self):
        q = random_orthogonal(40, seed=3)
        np.testing.assert_allclose(q @ q.T, np.eye(40), atol=1e-10)

    def test_rotation_cancels_without_quantization(self, model, calib):
        name, w, x = _layer(model, calib)

        class NoQuant(QuaRot):
            def quantize_weight(self, name, w, x):
                rot = self._rotation(w.shape[1])
                return (w @ rot) @ rot.T

        out = NoQuant(QuantConfig(dtype="int4_asym")).quantize_weight(name, w, x)
        np.testing.assert_allclose(out, w, atol=1e-10)

    def test_rotation_gaussianizes(self, model, calib):
        """Rotation reduces weight kurtosis (outlier spreading)."""
        name, w, x = _layer(model, calib)
        qr = QuaRot(QuantConfig(dtype="int4_asym"))
        rot = qr._rotation(w.shape[1])
        wr = w @ rot

        def kurt(a):
            a = (a - a.mean()) / a.std()
            return float(np.mean(a**4))

        assert kurt(wr) < kurt(w)


class TestModelLevel:
    @pytest.mark.parametrize("factory", [RTN, AWQ, OmniQuant, QuaRot])
    def test_quantize_model_replaces_all_linears(self, model, calib, factory):
        method = factory(QuantConfig(dtype="int4_asym"))
        q = method.quantize_model(model, calib)
        changed = sum(
            not np.array_equal(q.weights[n], model.weights[n])
            for n in model.named_linears()
        )
        assert changed == len(model.named_linears())
