"""The atomic write-temp-then-rename helper."""

import json

import pytest

from repro.resilience import atomic_write_bytes, atomic_write_json, atomic_write_text


class TestAtomicWrite:
    def test_bytes_round_trip(self, tmp_path):
        p = atomic_write_bytes(tmp_path / "a.bin", b"\x00\x01payload")
        assert p.read_bytes() == b"\x00\x01payload"

    def test_creates_parent_dirs(self, tmp_path):
        p = atomic_write_text(tmp_path / "deep" / "er" / "x.txt", "hi")
        assert p.read_text() == "hi"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "report.json"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        for i in range(5):
            atomic_write_text(tmp_path / "out.txt", f"v{i}")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_json_compact_by_default(self, tmp_path):
        p = atomic_write_json(tmp_path / "o.json", {"b": 1, "a": 2})
        text = p.read_text()
        assert "\n" not in text
        assert json.loads(text) == {"b": 1, "a": 2}

    def test_json_indent_gets_trailing_newline(self, tmp_path):
        p = atomic_write_json(tmp_path / "o.json", {"a": 1}, indent=2)
        assert p.read_text().endswith("}\n")

    def test_failure_leaves_old_file_intact(self, tmp_path):
        target = tmp_path / "keep.json"
        atomic_write_json(target, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["keep.json"]
