"""Bounded exponential backoff."""

import pytest

from repro.resilience import RetryBudgetExceeded, RetryPolicy


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        p = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=0.5, multiplier=2.0)
        assert [p.delay(n) for n in range(1, 6)] == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_sleep_reports_delay_used(self):
        slept = []
        p = RetryPolicy(base_delay_s=0.25, multiplier=1.0)
        assert p.sleep(1, _sleep=slept.append) == 0.25
        assert slept == [0.25]

    def test_attempts_yields_budget(self):
        p = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        assert list(p.attempts()) == [1, 2, 3]
        assert list(RetryPolicy(max_attempts=0).attempts()) == []

    def test_budget_error_is_runtime_error(self):
        assert issubclass(RetryBudgetExceeded, RuntimeError)
