"""Append-only run journals and torn-tail recovery."""

import pytest

from repro.resilience import RunJournal, run_dir


class TestRunDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))
        assert run_dir("night1") == tmp_path / "runs" / "night1"

    def test_defaults_under_cache_root(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert run_dir("r1") == tmp_path / "cache" / "runs" / "r1"

    @pytest.mark.parametrize("bad", ["", "../escape", "a/b", ".hidden", "x y"])
    def test_hostile_run_ids_rejected(self, bad):
        with pytest.raises(ValueError, match="invalid run id"):
            run_dir(bad)


class TestRunJournal:
    def test_append_requires_event_key(self, tmp_path):
        j = RunJournal(tmp_path / "j.jsonl")
        with pytest.raises(ValueError, match="'event' key"):
            j.append({"name": "x"})

    def test_round_trip(self, tmp_path):
        with RunJournal(tmp_path / "j.jsonl") as j:
            j.append({"event": "run_start", "quick": True})
            j.append({"event": "experiment", "name": "fig01"})
        j2 = RunJournal(tmp_path / "j.jsonl")
        assert [r["event"] for r in j2.records()] == ["run_start", "experiment"]

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as j:
            j.append({"event": "a"})
            j.append({"event": "b"})
        # Simulate a crash mid-append: the final line is half-written.
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"event": "c", "resu')
        assert [r["event"] for r in RunJournal(path).records()] == ["a", "b"]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "a"}\nGARBAGE\n{"event": "b"}\n')
        with pytest.raises(ValueError, match="corrupt journal line 2"):
            RunJournal(path).records()

    def test_missing_file_reads_empty(self, tmp_path):
        assert RunJournal(tmp_path / "nope.jsonl").records() == []

    def test_completed_keeps_latest_per_key(self, tmp_path):
        with RunJournal(tmp_path / "j.jsonl") as j:
            j.append({"event": "experiment", "name": "fig01", "rev": 1})
            j.append({"event": "experiment", "name": "fig02", "rev": 1})
            j.append({"event": "experiment", "name": "fig01", "rev": 2})
            j.append({"event": "other", "name": "fig03"})
        done = RunJournal(tmp_path / "j.jsonl").completed("experiment")
        assert set(done) == {"fig01", "fig02"}
        assert done["fig01"]["rev"] == 2

    def test_completed_keys_flattens(self, tmp_path):
        with RunJournal(tmp_path / "j.jsonl") as j:
            j.append({"event": "cells", "keys": ["k1", "k2"]})
            j.append({"event": "cells", "key": "k3"})
        assert RunJournal(tmp_path / "j.jsonl").completed_keys("cells") == [
            "k1",
            "k2",
            "k3",
        ]

    def test_for_run_places_journal(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path))
        j = RunJournal.for_run("r7")
        assert j.path == tmp_path / "r7" / "journal.jsonl"
