"""Worker crashes: the pool respawns and only unfinished cells retry."""

import json

import pytest

from repro import obs
from repro.pipeline import CellGrid, CellSpec, Engine
from repro.pipeline.store import CacheStore
from repro.quant.config import QuantConfig
from repro.resilience import RetryBudgetExceeded, RetryPolicy, faults
from repro.resilience.faults import FaultInjected, FaultPlan, FaultSpec

_GRID = CellGrid(
    rows=(("int4_asym", QuantConfig(dtype="int4_asym")),),
    models=("opt-1.3b", "phi-2b"),
    datasets=("wikitext",),
)


def _kill_plan_env(tmp_path, monkeypatch, times=1, exit_code=137):
    """Install a one-shot worker-kill plan via $REPRO_FAULTS so pool
    workers (which inherit the environment) load it too."""
    plan = FaultPlan([FaultSpec(site="pipeline.cell", action="kill", times=times,
                                exit_code=exit_code)])
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    monkeypatch.setenv("REPRO_FAULTS", f"@{path}")
    faults.clear_fault_plan()
    return path


class TestWorkerKillRecovery:
    def test_killed_worker_respawns_and_completes(self, tmp_path, monkeypatch):
        serial = Engine(store=CacheStore(tmp_path / "serial"))
        expected = serial.run_grid(_GRID)

        obs.reset()
        _kill_plan_env(tmp_path, monkeypatch)
        fast = RetryPolicy(base_delay_s=0.0)
        with Engine(store=CacheStore(tmp_path / "chaos"), jobs=2, retry=fast) as engine:
            results = engine.run_grid(_GRID)
        assert results == expected
        counters = obs.snapshot()["counters"]
        assert counters["resilience.pool_restarts"] >= 1

    def test_survivor_cells_not_recomputed(self, tmp_path, monkeypatch):
        """After the crash, cells the dead pool already persisted come
        back as cache hits — only the unfinished remainder recomputes."""
        obs.reset()
        _kill_plan_env(tmp_path, monkeypatch)
        store = CacheStore(tmp_path / "chaos")
        fast = RetryPolicy(base_delay_s=0.0)
        with Engine(store=store, jobs=2, retry=fast) as engine:
            results = engine.run_grid(_GRID)
        assert len(results) == len(_GRID.specs())
        # Total work is bounded: every cell computed at most twice even
        # though the whole pool went down.
        assert engine.computed <= 2 * len(_GRID.specs())

    def test_persistent_crash_exhausts_retry_budget(self, tmp_path, monkeypatch):
        # Enough kill budget to outlast every retry round.
        _kill_plan_env(tmp_path, monkeypatch, times=50)
        fast = RetryPolicy(max_attempts=1, base_delay_s=0.0)
        with Engine(store=CacheStore(tmp_path / "c"), jobs=2, retry=fast) as engine:
            with pytest.raises(RetryBudgetExceeded):
                engine.run_grid(_GRID)


class TestRaiseFault:
    def test_serial_cell_fault_propagates(self, tmp_path):
        faults.set_fault_plan(
            FaultPlan([FaultSpec(site="pipeline.cell", action="raise")])
        )
        try:
            engine = Engine(store=CacheStore(tmp_path))
            with pytest.raises(FaultInjected):
                engine.run([CellSpec(model="opt-1.3b", dataset="wikitext")])
        finally:
            faults.set_fault_plan(None)


class TestJournaledCells:
    def test_engine_journals_missing_cell_keys(self, tmp_path):
        from repro.resilience import RunJournal

        journal = RunJournal(tmp_path / "j.jsonl")
        engine = Engine(store=CacheStore(tmp_path / "cache"), journal=journal)
        engine.run_grid(_GRID)
        journal.close()
        keys = RunJournal(tmp_path / "j.jsonl").completed_keys("cells")
        assert len(keys) == len(_GRID.specs())
        # Warm rerun: nothing missing, nothing journaled.
        journal2 = RunJournal(tmp_path / "j2.jsonl")
        warm = Engine(store=CacheStore(tmp_path / "cache"), journal=journal2)
        warm.run_grid(_GRID)
        journal2.close()
        assert RunJournal(tmp_path / "j2.jsonl").completed_keys("cells") == []
