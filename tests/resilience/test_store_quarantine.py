"""Cache integrity: corrupt entries quarantine + recompute, never crash."""

import json

import numpy as np
import pytest

from repro.pipeline import CellSpec, Engine
from repro.pipeline.store import CacheStore
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec

_SPEC = CellSpec(model="opt-1.3b", dataset="wikitext")


def _entry(store, kind, key, suffix=".json"):
    return store.path_for(kind, key, suffix)


class TestJsonIntegrity:
    def test_round_trip_verifies(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put_json("cells", "ab" + "0" * 14, {"ppl": 1.5})
        assert store.get_json("cells", "ab" + "0" * 14) == {"ppl": 1.5}
        assert store.quarantined == 0

    def test_bit_flip_quarantined_as_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        key = "ab" + "0" * 14
        store.put_json("cells", key, {"ppl": 1.5})
        faults.corrupt_file(_entry(store, "cells", key), "flip")
        assert store.get_json("cells", key) is None
        assert store.quarantined == 1
        # The damaged entry is kept for postmortems, out of the lookup path.
        assert (tmp_path / "corrupt" / "cells" / f"{key}.json").exists()
        assert not _entry(store, "cells", key).exists()

    def test_truncation_quarantined_as_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        key = "cd" + "0" * 14
        store.put_json("cells", key, {"rows": list(range(50))})
        faults.corrupt_file(_entry(store, "cells", key), "truncate")
        assert store.get_json("cells", key) is None
        assert store.quarantined == 1

    def test_tampered_payload_fails_digest(self, tmp_path):
        store = CacheStore(tmp_path)
        key = "ef" + "0" * 14
        store.put_json("cells", key, {"ppl": 1.5})
        path = _entry(store, "cells", key)
        doc = json.loads(path.read_text())
        doc["payload"]["ppl"] = 9.9  # silent poison, valid JSON
        path.write_text(json.dumps(doc))
        assert store.get_json("cells", key) is None
        assert store.quarantined == 1

    def test_legacy_plain_entry_accepted(self, tmp_path):
        store = CacheStore(tmp_path)
        key = "0a" + "0" * 14
        path = _entry(store, "cells", key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"ppl": 2.0}))
        assert store.get_json("cells", key) == {"ppl": 2.0}
        assert store.quarantined == 0

    def test_quarantine_counts_in_stats(self, tmp_path):
        store = CacheStore(tmp_path)
        key = "ba" + "0" * 14
        store.put_json("cells", key, {"x": 1})
        faults.corrupt_file(_entry(store, "cells", key), "flip")
        store.get_json("cells", key)
        assert store.stats()["quarantined"] == 1


class TestNpzIntegrity:
    def test_truncated_bundle_quarantined(self, tmp_path):
        store = CacheStore(tmp_path)
        key = "12" + "0" * 14
        store.put_arrays("packed", key, {"w": np.arange(1000)})
        faults.corrupt_file(_entry(store, "packed", key, ".npz"), "truncate")
        assert store.get_arrays("packed", key) is None
        assert store.quarantined == 1
        assert (tmp_path / "corrupt" / "packed" / f"{key}.npz").exists()

    def test_missing_bundle_is_plain_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.get_arrays("packed", "99" + "0" * 14) is None
        assert store.quarantined == 0


class TestInjectedCacheCorruption:
    def test_corrupted_entry_recomputes_identically(self, tmp_path):
        """A cache.put corrupt fault poisons the entry on disk; the
        next run quarantines it and recomputes the same result."""
        clean = Engine(store=CacheStore(tmp_path / "a"))
        (expected,) = clean.run([_SPEC])

        store = CacheStore(tmp_path / "b")
        faults.set_fault_plan(
            FaultPlan([FaultSpec(site="cache.put", action="corrupt", mode="flip")])
        )
        try:
            first = Engine(store=store)
            first.run([_SPEC])  # writes the cell, fault flips it on disk
        finally:
            faults.set_fault_plan(None)

        recovered = Engine(store=CacheStore(tmp_path / "b"))
        (result,) = recovered.run([_SPEC])
        assert result == expected
        assert recovered.computed == 1  # quarantined entry forced a recompute
        assert recovered.store.quarantined == 1

    def test_match_restricts_corruption_to_kind(self, tmp_path):
        store = CacheStore(tmp_path)
        faults.set_fault_plan(
            FaultPlan(
                [
                    FaultSpec(
                        site="cache.put",
                        action="corrupt",
                        match=(("kind", "dse"),),
                        times=100,
                    )
                ]
            )
        )
        try:
            store.put_json("cells", "aa" + "0" * 14, {"x": 1})
            store.put_json("dse", "bb" + "0" * 14, {"x": 2})
        finally:
            faults.set_fault_plan(None)
        assert store.get_json("cells", "aa" + "0" * 14) == {"x": 1}
        assert store.get_json("dse", "bb" + "0" * 14) is None
        assert store.quarantined == 1
