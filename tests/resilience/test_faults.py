"""Deterministic fault injection: triggers, budgets, env activation."""

import json
import time

import pytest

from repro.resilience import faults
from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    corrupt_file,
)


def _plan(*specs, **kw):
    return FaultPlan(list(specs), **kw)


class TestFaultSpec:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="x", action="explode")

    def test_unknown_corrupt_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown corrupt mode"):
            FaultSpec(site="x", action="corrupt", mode="shred")

    def test_trigger_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="raise", after=-1)
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="raise", times=0)
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="raise", p=0.0)

    def test_match_filters_on_ctx(self):
        spec = FaultSpec(site="pipeline.cell", action="raise", match=(("model", "opt"),))
        assert spec.matches("pipeline.cell", {"model": "opt", "dataset": "wt"})
        assert not spec.matches("pipeline.cell", {"model": "phi"})
        assert not spec.matches("cache.put", {"model": "opt"})

    def test_dict_round_trip(self):
        spec = FaultSpec(
            site="cache.put", action="corrupt", match=(("kind", "cells"),), mode="flip"
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_raise_action_carries_site_and_ctx(self):
        plan = _plan(FaultSpec(site="s", action="raise"))
        with pytest.raises(FaultInjected) as e:
            plan.fire("s", model="opt")
        assert e.value.site == "s"
        assert e.value.ctx == {"model": "opt"}

    def test_after_skips_leading_events(self):
        plan = _plan(FaultSpec(site="s", action="raise", after=2))
        assert plan.fire("s") is None
        assert plan.fire("s") is None
        with pytest.raises(FaultInjected):
            plan.fire("s")

    def test_times_bounds_activations(self):
        plan = _plan(FaultSpec(site="s", action="raise", times=2))
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.fire("s")
        assert plan.fire("s") is None

    def test_delay_action_sleeps_then_continues(self):
        plan = _plan(FaultSpec(site="s", action="delay", delay_s=0.01))
        t0 = time.perf_counter()
        spec = plan.fire("s")
        assert spec is not None and spec.action == "delay"
        assert time.perf_counter() - t0 >= 0.01

    def test_corrupt_action_returned_not_performed(self):
        plan = _plan(FaultSpec(site="s", action="corrupt", mode="flip"))
        spec = plan.fire("s")
        assert spec.action == "corrupt" and spec.mode == "flip"

    def test_seeded_probability_is_deterministic(self):
        def fired(seed):
            plan = _plan(FaultSpec(site="s", action="corrupt", p=0.5, times=100), seed=seed)
            return [plan.fire("s") is not None for _ in range(50)]

        a, b = fired(7), fired(7)
        assert a == b
        assert any(a) and not all(a)
        assert fired(8) != a

    def test_state_dir_shares_times_budget_across_plans(self, tmp_path):
        spec = FaultSpec(site="s", action="raise", times=1)
        first = _plan(spec, state_dir=tmp_path / "state")
        with pytest.raises(FaultInjected):
            first.fire("s")
        # A second process loading the same plan file sees the spent
        # marker and must not re-fire.
        respawned = _plan(spec, state_dir=tmp_path / "state")
        assert respawned.fire("s") is None


class TestActivation:
    def test_inline_env_json(self, monkeypatch):
        plan = {"faults": [{"site": "s", "action": "raise"}], "seed": 3}
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(plan))
        faults.clear_fault_plan()
        assert faults.enabled()
        assert faults.get_fault_plan().seed == 3
        with pytest.raises(FaultInjected):
            faults.fire("s")

    def test_plan_file_gets_sibling_state_dir(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan([FaultSpec(site="s", action="raise")]).to_json())
        monkeypatch.setenv("REPRO_FAULTS", f"@{path}")
        faults.clear_fault_plan()
        plan = faults.get_fault_plan()
        assert plan.state_dir == tmp_path / "plan.json.state"

    def test_disabled_by_default(self):
        assert not faults.enabled()
        assert faults.fire("anything") is None

    def test_set_and_clear(self):
        faults.set_fault_plan(FaultPlan([FaultSpec(site="s", action="raise")]))
        assert faults.enabled()
        faults.set_fault_plan(None)
        assert not faults.enabled()


class TestCorruptFile:
    def test_truncate_halves(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"x" * 100)
        corrupt_file(p, "truncate")
        assert len(p.read_bytes()) == 50

    def test_flip_changes_one_byte(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(bytes(range(10)))
        corrupt_file(p, "flip")
        data = p.read_bytes()
        assert len(data) == 10
        assert data[5] == 5 ^ 0xFF
        assert data[:5] == bytes(range(5))

    def test_unknown_mode_rejected(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"x")
        with pytest.raises(ValueError):
            corrupt_file(p, "shred")
