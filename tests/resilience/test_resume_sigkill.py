"""End-to-end crash/resume: a SIGKILLed run resumes byte-identically.

The subprocess runs ``bitmod-repro fig01 table01 --quick --run-id ...``
under a fault plan that hard-kills the process (``os._exit``, the
moral equivalent of SIGKILL: no cleanup, no finally blocks) partway
through table01's cells.  The restarted ``--resume`` run must replay
fig01 from the journal, finish table01 from the partial cache, and
emit exactly the bytes an uninterrupted run produces.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.resilience.faults import FaultPlan, FaultSpec

_REPO = Path(__file__).resolve().parents[2]
_EXPERIMENTS = ["fig01", "table01"]


def _run(tmp_path, out_name, *extra, faults_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["REPRO_RUN_DIR"] = str(tmp_path / "runs")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULTS_STATE", None)
    if faults_env is not None:
        env["REPRO_FAULTS"] = faults_env
    cmd = [
        sys.executable,
        "-m",
        "repro.experiments.runner",
        *_EXPERIMENTS,
        "--quick",
        "--json",
        str(tmp_path / out_name),
        *extra,
    ]
    return subprocess.run(cmd, env=env, capture_output=True, text=True, timeout=300)


def test_sigkilled_run_resumes_byte_identical(tmp_path):
    clean = _run(tmp_path, "clean")
    assert clean.returncode == 0, clean.stderr

    # Hard-kill the process at its 5th evaluation cell: fig01 (cell-free)
    # has finished and journaled, table01 dies mid-batch.  times=1 with
    # the plan-file state dir means the resumed process does not re-die.
    plan = FaultPlan(
        [FaultSpec(site="pipeline.cell", action="kill", after=4, exit_code=137)]
    )
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(plan.to_json())

    # Fresh cache for the crashing pair so nothing leaks from the clean run.
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    killed = _run(chaos_dir, "out", "--run-id", "night1", faults_env=f"@{plan_path}")
    assert killed.returncode == 137, killed.stderr

    journal = chaos_dir / "runs" / "night1" / "journal.jsonl"
    events = [json.loads(line) for line in journal.read_text().splitlines()]
    done = [r["name"] for r in events if r["event"] == "experiment"]
    assert done == ["fig01"]  # died inside table01

    resumed = _run(chaos_dir, "out", "--resume", "night1", faults_env=f"@{plan_path}")
    assert resumed.returncode == 0, resumed.stderr
    assert "replayed from journal" not in resumed.stdout  # logging, not stdout

    for name in _EXPERIMENTS:
        clean_bytes = (tmp_path / "clean" / f"{name}.json").read_bytes()
        resumed_bytes = (chaos_dir / "out" / f"{name}.json").read_bytes()
        assert resumed_bytes == clean_bytes, f"{name}.json differs after resume"

    meta = json.loads((chaos_dir / "out" / "_run_meta.json").read_text())
    assert meta["run_id"] == "night1"
    assert meta["replayed"] == ["fig01"]
