"""Fault-plan hygiene: no plan (or $REPRO_FAULTS) leaks across tests."""

import pytest

from repro.resilience import faults


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_STATE", raising=False)
    faults.clear_fault_plan()
    yield
    faults.clear_fault_plan()
