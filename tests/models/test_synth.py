"""Tests for synthetic weight generation."""

import numpy as np
import pytest

from repro.models.config import WeightProfile
from repro.models.synth import generate_model_weights, generate_weight_matrix
from repro.models.zoo import get_model_config


class TestWeightMatrix:
    def test_shape_and_scale(self, rng):
        prof = WeightProfile()
        w = generate_weight_matrix(rng, 64, 256, prof)
        assert w.shape == (64, 256)
        assert np.sqrt(np.mean(w**2)) == pytest.approx(1 / np.sqrt(256), rel=1e-6)

    def test_heavier_tails_have_higher_kurtosis(self):
        heavy = generate_weight_matrix(
            np.random.default_rng(0), 128, 512, WeightProfile(tail_df=2.5)
        )
        light = generate_weight_matrix(
            np.random.default_rng(0), 128, 512, WeightProfile(tail_df=30.0)
        )

        def kurt(x):
            x = x / x.std()
            return float(np.mean(x**4))

        assert kurt(heavy) > kurt(light)

    def test_group_shift_creates_asymmetric_groups(self):
        prof = WeightProfile(group_shift=0.8, outlier_rate=0.0)
        w = generate_weight_matrix(np.random.default_rng(0), 64, 512, prof)
        groups = w.reshape(-1, 128)
        means = np.abs(groups.mean(axis=1)) / groups.std(axis=1)
        prof0 = WeightProfile(group_shift=0.0, outlier_rate=0.0)
        w0 = generate_weight_matrix(np.random.default_rng(0), 64, 512, prof0)
        means0 = np.abs(w0.reshape(-1, 128).mean(axis=1)) / w0.reshape(-1, 128).std(axis=1)
        assert means.mean() > 2 * means0.mean()

    def test_outliers_present(self):
        prof = WeightProfile(outlier_rate=0.01, outlier_mag=20.0)
        w = generate_weight_matrix(np.random.default_rng(0), 64, 512, prof)
        assert np.max(np.abs(w)) / w.std() > 10

    def test_df_at_most_2_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_weight_matrix(rng, 4, 8, WeightProfile(tail_df=2.0))


class TestModelWeights:
    def test_deterministic_across_calls(self):
        cfg = get_model_config("llama-2-7b")
        w1 = generate_model_weights(cfg, seed=7)
        w2 = generate_model_weights(cfg, seed=7)
        for k in w1:
            np.testing.assert_array_equal(w1[k], w2[k])

    def test_seed_changes_weights(self):
        cfg = get_model_config("llama-2-7b")
        w1 = generate_model_weights(cfg, seed=0)
        w2 = generate_model_weights(cfg, seed=1)
        assert not np.array_equal(w1["layers.0.q_proj"], w2["layers.0.q_proj"])

    def test_models_differ_from_each_other(self):
        a = generate_model_weights(get_model_config("llama-2-7b"), 0)
        b = generate_model_weights(get_model_config("yi-6b"), 0)
        assert not np.array_equal(a["layers.0.q_proj"], b["layers.0.q_proj"])

    def test_expected_keys(self):
        cfg = get_model_config("opt-1.3b")
        w = generate_model_weights(cfg, 0)
        assert "embed" in w and "lm_head" in w and "final_norm" in w
        for layer in range(cfg.sim_layers):
            for name in ("q_proj", "k_proj", "v_proj", "o_proj", "fc1", "fc2"):
                assert f"layers.{layer}.{name}" in w

    def test_gated_models_have_gate_proj(self):
        w = generate_model_weights(get_model_config("llama-2-7b"), 0)
        assert "layers.0.gate_proj" in w and "layers.0.fc1" not in w

    def test_tied_embeddings(self):
        w = generate_model_weights(get_model_config("opt-1.3b"), 0)
        assert w["embed"] is w["lm_head"]

    def test_norm_gains_contain_act_outliers(self):
        cfg = get_model_config("opt-1.3b")
        w = generate_model_weights(cfg, 0)
        gain = w["layers.0.attn_norm"]
        assert gain.max() > 3.0  # planted activation-outlier channels
        assert np.median(gain) == 1.0
