"""Tests for the synthetic corpora and the model zoo."""

import numpy as np
import pytest

from repro.models.config import GEMMShape
from repro.models.corpus import CORPORA, make_eval_batch, sample_tokens
from repro.models.zoo import MODEL_ZOO, get_model_config, list_models


class TestCorpus:
    def test_deterministic(self):
        a = sample_tokens("wikitext", 1000, 2, 64)
        b = sample_tokens("wikitext", 1000, 2, 64)
        np.testing.assert_array_equal(a, b)

    def test_datasets_differ(self):
        a = sample_tokens("wikitext", 1000, 2, 64)
        b = sample_tokens("c4", 1000, 2, 64)
        assert not np.array_equal(a, b)

    def test_tokens_in_vocab(self):
        toks = sample_tokens("c4", 500, 4, 128)
        assert toks.min() >= 0 and toks.max() < 500

    def test_zipfian_concentration(self):
        toks = sample_tokens("wikitext", 2048, 8, 256)
        counts = np.bincount(toks.reshape(-1), minlength=2048)
        top = np.sort(counts)[::-1]
        assert top[:20].sum() > 0.25 * counts.sum()

    def test_markov_structure(self):
        """Consecutive tokens repeat transitions more than chance."""
        toks = sample_tokens("wikitext", 2048, 4, 512)
        pairs = set()
        n_pairs = 0
        for row in toks:
            for a, b in zip(row[:-1], row[1:]):
                pairs.add((int(a), int(b)))
                n_pairs += 1
        assert len(pairs) < 0.8 * n_pairs  # transitions repeat

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            sample_tokens("pile", 100, 1, 8)

    def test_make_eval_batch_shape(self):
        assert make_eval_batch("wikitext", 2048, 4, 128).shape == (4, 128)

    def test_both_specs_registered(self):
        assert set(CORPORA) == {"wikitext", "c4"}


class TestZoo:
    def test_six_models(self):
        assert len(MODEL_ZOO) == 6

    @pytest.mark.parametrize("name", list_models())
    def test_anchors_present(self, name):
        cfg = get_model_config(name)
        assert set(cfg.fp16_ppl) == {"wikitext", "c4"}
        assert set(cfg.fp16_acc) == {"hellaswag", "winogrande", "piqa"}

    def test_full_size_parameter_counts(self):
        """Full-size architectures land near the advertised sizes."""
        expect = {
            "opt-1.3b": 1.3,
            "yi-6b": 6.0,
            "llama-2-7b": 6.7,
            "llama-2-13b": 13.0,
            "llama-3-8b": 8.0,
        }
        for name, billions in expect.items():
            cfg = get_model_config(name)
            assert cfg.params_billions == pytest.approx(billions, rel=0.15)

    def test_gqa_models(self):
        assert get_model_config("llama-3-8b").n_kv_heads == 8
        assert get_model_config("yi-6b").n_kv_heads == 4
        assert get_model_config("llama-2-7b").n_kv_heads == 32

    def test_block_gemms_cover_architecture(self):
        cfg = get_model_config("llama-2-7b")
        names = {g.name for g in cfg.block_gemms(1)}
        assert names == {
            "q_proj", "k_proj", "v_proj", "o_proj",
            "gate_proj", "up_proj", "down_proj",
        }

    def test_gemm_macs(self):
        g = GEMMShape("t", m=2, k=3, n=5, count=2, repeat=4)
        assert g.macs == 2 * 3 * 5 * 2 * 4
        assert g.weight_elements == 3 * 5 * 2 * 4

    def test_streamed_excludes_embedding(self):
        cfg = get_model_config("llama-2-7b")
        assert cfg.streamed_weight_elements < cfg.num_parameters

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="known"):
            get_model_config("gpt-5")

    def test_opt_heaviest_profile(self):
        """OPT's documented outlier structure is the strongest."""
        opt = get_model_config("opt-1.3b").profile
        l213 = get_model_config("llama-2-13b").profile
        assert opt.tail_df < l213.tail_df
        assert opt.act_outlier_rate > l213.act_outlier_rate
        assert opt.group_shift > l213.group_shift
