"""Tests for the numpy transformer building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.layers import (
    apply_rope,
    causal_attention,
    gelu,
    layer_norm,
    linear,
    rms_norm,
    rope_cache,
    silu,
    softmax,
)


class TestNorms:
    def test_rms_norm_unit_rms(self, rng):
        x = rng.standard_normal((2, 5, 32)) * 7
        out = rms_norm(x, np.ones(32))
        np.testing.assert_allclose(
            np.sqrt(np.mean(out**2, axis=-1)), 1.0, rtol=1e-5
        )

    def test_layer_norm_zero_mean_unit_var(self, rng):
        x = rng.standard_normal((3, 16)) * 4 + 2
        out = layer_norm(x, np.ones(16))
        np.testing.assert_allclose(out.mean(-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.var(-1), 1.0, rtol=1e-4)

    def test_gain_applied(self, rng):
        x = rng.standard_normal((4, 8))
        gain = np.full(8, 3.0)
        np.testing.assert_allclose(rms_norm(x, gain), 3 * rms_norm(x, np.ones(8)))


class TestSoftmax:
    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_sums_to_one(self, logits):
        p = softmax(np.array(logits))
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal(10)
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_no_overflow_on_large_inputs(self):
        p = softmax(np.array([1e4, 0.0]))
        assert np.isfinite(p).all()


class TestActivations:
    def test_gelu_asymptotes(self):
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-4)
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-4)

    def test_silu_at_zero(self):
        assert silu(np.array([0.0]))[0] == 0.0


class TestRope:
    def test_rotation_preserves_norm(self, rng):
        cos, sin = rope_cache(16, 32)
        x = rng.standard_normal((1, 2, 16, 32))
        out = apply_rope(x, cos, sin)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-10
        )

    def test_position_zero_is_identity(self, rng):
        cos, sin = rope_cache(4, 8)
        x = rng.standard_normal((1, 1, 4, 8))
        out = apply_rope(x, cos, sin)
        np.testing.assert_allclose(out[..., 0, :], x[..., 0, :])

    def test_relative_property(self, rng):
        """Dot products depend only on relative positions."""
        cos, sin = rope_cache(8, 16)
        q = rng.standard_normal(16)
        k = rng.standard_normal(16)
        scores = []
        for p in (0, 3):
            qr = apply_rope(q[None, None, None, :], cos[p: p + 1], sin[p: p + 1])
            kr = apply_rope(k[None, None, None, :], cos[p + 2: p + 3], sin[p + 2: p + 3])
            scores.append(float(qr.reshape(-1) @ kr.reshape(-1)))
        assert scores[0] == pytest.approx(scores[1])

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_cache(4, 7)


class TestAttention:
    def test_causality(self, rng):
        """Changing future tokens must not affect past outputs."""
        q = rng.standard_normal((1, 2, 6, 8))
        k = rng.standard_normal((1, 2, 6, 8))
        v = rng.standard_normal((1, 2, 6, 8))
        out1 = causal_attention(q, k, v)
        k2, v2 = k.copy(), v.copy()
        k2[:, :, 4:] += 10.0
        v2[:, :, 4:] -= 5.0
        out2 = causal_attention(q, k2, v2)
        np.testing.assert_allclose(out1[:, :, :4], out2[:, :, :4])

    def test_first_position_copies_v(self, rng):
        q = rng.standard_normal((1, 1, 3, 4))
        k = rng.standard_normal((1, 1, 3, 4))
        v = rng.standard_normal((1, 1, 3, 4))
        out = causal_attention(q, k, v)
        np.testing.assert_allclose(out[0, 0, 0], v[0, 0, 0])

    def test_linear_is_x_wt(self, rng):
        x = rng.standard_normal((3, 8))
        w = rng.standard_normal((5, 8))
        np.testing.assert_allclose(linear(x, w), x @ w.T)
