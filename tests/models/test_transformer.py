"""Tests for the CausalLM substrate."""

import numpy as np
import pytest

from repro.models.transformer import CausalLM
from repro.models.zoo import get_model_config, list_models


@pytest.fixture(scope="module")
def llama():
    return CausalLM(get_model_config("llama-2-7b"), seed=0)


@pytest.fixture(scope="module")
def tokens(llama):
    rng = np.random.default_rng(0)
    return rng.integers(0, llama.config.sim_vocab, size=(2, 24))


class TestForward:
    def test_logits_shape(self, llama, tokens):
        out = llama.logits(tokens)
        assert out.shape == (2, 24, llama.config.sim_vocab)

    def test_1d_tokens_accepted(self, llama):
        out = llama.logits(np.arange(8))
        assert out.shape == (1, 8, llama.config.sim_vocab)

    def test_deterministic(self, llama, tokens):
        np.testing.assert_array_equal(llama.logits(tokens), llama.logits(tokens))

    def test_causal(self, llama, tokens):
        """Changing a future token leaves earlier logits unchanged."""
        t2 = tokens.copy()
        t2[:, -1] = (t2[:, -1] + 1) % llama.config.sim_vocab
        a = llama.logits(tokens)
        b = llama.logits(t2)
        np.testing.assert_allclose(a[:, :-1], b[:, :-1])
        assert not np.allclose(a[:, -1], b[:, -1])

    @pytest.mark.parametrize("name", list_models())
    def test_every_zoo_model_runs(self, name):
        model = CausalLM(get_model_config(name), seed=0)
        out = model.logits(np.arange(12))
        assert np.isfinite(out).all()
        assert 0.2 < out.std() < 5.0  # healthy logit scale

    def test_gqa_kv_heads(self):
        cfg = get_model_config("yi-6b")
        assert cfg.sim_kv_heads < cfg.sim_heads
        model = CausalLM(cfg, seed=0)
        assert np.isfinite(model.logits(np.arange(8))).all()


class TestQuantizerInterface:
    def test_named_linears_excludes_norms_and_embeddings(self, llama):
        names = set(llama.named_linears())
        assert not any(n.endswith("_norm") for n in names)
        assert "embed" not in names and "lm_head" not in names
        assert f"layers.0.q_proj" in names

    def test_apply_quantizer_returns_copy(self, llama, tokens):
        before = llama.logits(tokens)
        clone = llama.apply_quantizer(lambda n, w: np.zeros_like(w))
        after = llama.logits(tokens)
        np.testing.assert_array_equal(before, after)  # original intact
        assert not np.allclose(clone.logits(tokens), before)

    def test_quantizer_receives_names(self, llama):
        seen = []

        def fn(name, w):
            seen.append(name)
            return w

        llama.apply_quantizer(fn)
        assert len(seen) == len(llama.named_linears())

    def test_collect_activations_shapes(self, llama, tokens):
        acts = llama.collect_activations(tokens)
        cfg = llama.config
        assert acts["layers.0.q_proj"].shape == (
            tokens.size,
            cfg.sim_hidden,
        )
        assert acts[f"layers.0.down_proj"].shape[1] == cfg.sim_intermediate


class TestActivationQuantization:
    def test_act_quant_changes_logits(self, llama, tokens):
        import copy

        q = copy.copy(llama)
        q.act_quant_bits = 4
        base = llama.logits(tokens)
        quant = q.logits(tokens)
        assert not np.allclose(base, quant)

    def test_int8_acts_are_mild(self, llama, tokens):
        import copy

        q = copy.copy(llama)
        q.act_quant_bits = 8
        base = llama.logits(tokens)
        diff = np.abs(q.logits(tokens) - base).mean()
        assert 0 < diff < 0.1 * np.abs(base).mean()
