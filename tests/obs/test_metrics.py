"""Unit tests for the metrics registry: counters, gauges, histograms."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    nearest_rank,
    series_name,
)


class TestNearestRank:
    def test_empty(self):
        assert nearest_rank([], 50) == 0.0

    def test_single_sample_every_percentile(self):
        for p in (0, 1, 50, 95, 99, 100):
            assert nearest_rank([7.0], p) == 7.0

    def test_two_samples(self):
        data = [1.0, 9.0]
        assert nearest_rank(data, 50) == 1.0
        assert nearest_rank(data, 95) == 9.0
        assert nearest_rank(data, 100) == 9.0

    def test_interior(self):
        data = list(range(1, 101))  # 1..100 already sorted
        assert nearest_rank(data, 50) in (50, 51)  # rank round(0.5 * 99)
        assert nearest_rank(data, 95) == 95
        assert nearest_rank(data, 99) == 99
        assert nearest_rank(data, 0) == 1
        assert nearest_rank(data, 100) == 100


class TestCounterGauge:
    def test_counter_inc(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.kind == "counter"

    def test_counter_snapshot_int_when_integral(self):
        c = Counter("n")
        c.inc(3)
        assert c.snapshot_value() == 3
        assert isinstance(c.snapshot_value(), int)
        c.inc(0.5)
        assert c.snapshot_value() == 3.5

    def test_gauge_set_and_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.dec(3)
        assert g.value == 7
        assert g.kind == "gauge"


class TestHistogram:
    def test_empty_summary(self):
        h = Histogram("lat")
        s = h.summary()
        assert s["count"] == 0
        assert s["p50"] == 0.0
        assert s["max"] == 0.0

    def test_single_sample(self):
        h = Histogram("lat")
        h.record(2.5)
        s = h.summary()
        assert s == {
            "count": 1,
            "mean": 2.5,
            "p50": 2.5,
            "p95": 2.5,
            "p99": 2.5,
            "max": 2.5,
        }

    def test_two_samples(self):
        h = Histogram("lat")
        h.record(1.0)
        h.record(3.0)
        s = h.summary()
        assert s["count"] == 2
        assert s["mean"] == 2.0
        assert s["p50"] == 1.0
        assert s["p95"] == 3.0
        assert s["max"] == 3.0

    def test_sorted_cache_invalidated_on_record(self):
        h = Histogram("lat")
        h.record(5.0)
        assert h.percentile(50) == 5.0  # builds the sorted cache
        h.record(1.0)  # must invalidate it
        assert h.percentile(50) == 1.0

    def test_reservoir_cap_bounds_memory(self):
        h = Histogram("lat", cap=64)
        for i in range(10_000):
            h.record(float(i))
        assert len(h.samples) == 64
        s = h.summary()
        # Running aggregates cover *all* samples, not just the reservoir.
        assert s["count"] == 10_000
        assert s["max"] == 9999.0
        assert s["mean"] == pytest.approx(4999.5)
        # Percentiles come from the reservoir: plausible, not exact.
        assert 0.0 <= s["p50"] <= 9999.0

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("lat", cap=0)

    def test_observe_alias(self):
        h = Histogram("lat")
        h.observe(1.0)
        assert h.summary()["count"] == 1


class TestRegistry:
    def test_get_or_create_same_instance(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", k="x") is not r.counter("a", k="y")

    def test_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("jobs").inc(2)
        r.gauge("depth").set(3)
        r.histogram("lat").record(0.5)
        snap = r.snapshot()
        assert snap["counters"] == {"jobs": 2}
        assert snap["gauges"] == {"depth": 3}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # must be JSON-serializable

    def test_labels_in_series_name(self):
        r = MetricsRegistry()
        r.counter("skip", reason="no_plan").inc()
        snap = r.snapshot()
        assert snap["counters"] == {"skip{reason=no_plan}": 1}
        assert series_name("skip", (("reason", "no_plan"),)) == "skip{reason=no_plan}"

    def test_dump_merge_roundtrip(self):
        a = MetricsRegistry()
        a.counter("n").inc(2)
        a.gauge("g").set(1)
        a.histogram("h").record(1.0)

        b = MetricsRegistry()
        b.counter("n").inc(3)
        b.gauge("g").set(9)
        b.histogram("h").record(3.0)

        a.merge(b.dump())
        snap = a.snapshot()
        assert snap["counters"]["n"] == 5  # counters add
        assert snap["gauges"]["g"] == 9  # gauges take the merged value
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["max"] == 3.0

    def test_merge_into_empty_registry(self):
        src = MetricsRegistry()
        src.counter("n", k="v").inc(7)
        src.histogram("h").record(2.0)
        dst = MetricsRegistry()
        dst.merge(src.dump())
        snap = dst.snapshot()
        assert snap["counters"]["n{k=v}"] == 7
        assert snap["histograms"]["h"]["count"] == 1

    def test_prometheus_exposition(self):
        r = MetricsRegistry()
        r.counter("pipeline.cache.hits").inc(3)
        r.gauge("serve.queue.waiting", model="opt").set(2)
        r.histogram("lat").record(1.0)
        text = r.to_prometheus()
        assert "pipeline_cache_hits 3" in text
        assert 'serve_queue_waiting{model="opt"} 2' in text
        assert "# TYPE pipeline_cache_hits counter" in text
        assert 'lat{quantile="0.5"} 1' in text
        assert "lat_count 1" in text


class TestDiffSnapshots:
    def test_counter_delta(self):
        before = {"counters": {"n": 2}, "gauges": {}, "histograms": {}}
        after = {"counters": {"n": 7, "m": 1}, "gauges": {}, "histograms": {}}
        d = diff_snapshots(before, after)
        assert d["counters"]["n"] == {"before": 2, "after": 7, "delta": 5}
        assert d["counters"]["m"]["delta"] == 1

    def test_histogram_fieldwise(self):
        h0 = {"count": 1, "mean": 1.0, "p50": 1.0, "p95": 1.0, "p99": 1.0, "max": 1.0}
        h1 = {"count": 3, "mean": 2.0, "p50": 2.0, "p95": 3.0, "p99": 3.0, "max": 3.0}
        d = diff_snapshots(
            {"counters": {}, "gauges": {}, "histograms": {"h": h0}},
            {"counters": {}, "gauges": {}, "histograms": {"h": h1}},
        )
        assert d["histograms"]["h"]["count"] == {"before": 1, "after": 3}
        assert d["histograms"]["h"]["max"]["after"] == 3.0
