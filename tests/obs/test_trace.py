"""Tests for the span tracer: nesting, export formats, summaries."""

import json
import os
import threading

import pytest

from repro.obs.trace import (
    NOOP_SPAN,
    Tracer,
    chrome_trace,
    load_spans,
    summarize_spans,
    to_jsonl,
    write_trace,
)


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestSpanRecording:
    def test_disabled_returns_shared_noop(self):
        t = Tracer(enabled=False)
        assert t.span("x") is NOOP_SPAN
        assert t.spans() == []

    def test_record_fields(self, tracer):
        with tracer.span("quantize", layer="fc1"):
            pass
        (s,) = tracer.spans()
        assert s["name"] == "quantize"
        assert s["args"] == {"layer": "fc1"}
        assert s["pid"] == os.getpid()
        assert s["tid"] == threading.get_ident()
        assert s["dur_ns"] >= 0
        assert s["parent"] is None

    def test_name_usable_as_span_arg(self, tracer):
        # The span label is positional-only, so callers may attach a
        # `name=` attribute (hw.gemm does).
        with tracer.span("hw.gemm", name="layer0.qkv"):
            pass
        (s,) = tracer.spans()
        assert s["name"] == "hw.gemm"
        assert s["args"]["name"] == "layer0.qkv"

    def test_nesting_links_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # inner exits (appends) first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_sibling_threads_do_not_nest(self, tracer):
        def work():
            with tracer.span("thread_span"):
                pass

        with tracer.span("main_span"):
            th = threading.Thread(target=work)
            th.start()
            th.join()
        spans = {s["name"]: s for s in tracer.spans()}
        # The other thread's stack is its own: no false parent link.
        assert spans["thread_span"]["parent"] is None

    def test_span_handle_exposes_mutable_args(self, tracer):
        with tracer.span("step") as sp:
            sp.args.update(decoded=3)
        (s,) = tracer.spans()
        assert s["args"] == {"decoded": 3}

    def test_add_span_explicit_timestamps(self, tracer):
        tracer.add_span("serve.request", start_wall_ns=1000, dur_ns=500, request="r1")
        (s,) = tracer.spans()
        assert s["ts_ns"] == 1000
        assert s["dur_ns"] == 500
        assert s["args"] == {"request": "r1"}

    def test_add_span_noop_when_disabled(self):
        t = Tracer(enabled=False)
        t.add_span("x", start_wall_ns=0, dur_ns=1)
        assert t.spans() == []

    def test_drain_and_absorb(self, tracer):
        with tracer.span("a"):
            pass
        spans = tracer.drain()
        assert len(spans) == 1
        assert tracer.spans() == []
        other = Tracer(enabled=True)
        other.absorb(spans)
        assert other.spans() == spans

    def test_ids_namespace_by_pid(self, tracer):
        with tracer.span("a"):
            pass
        (s,) = tracer.spans()
        assert s["id"] >> 32 == os.getpid()


class TestExport:
    def _two_spans(self):
        t = Tracer(enabled=True)
        with t.span("outer", k=1):
            with t.span("inner"):
                pass
        return t.spans()

    def test_jsonl_roundtrip(self, tmp_path):
        spans = self._two_spans()
        path = write_trace(tmp_path / "trace.jsonl", spans)
        assert load_spans(path) == spans

    def test_jsonl_single_span(self, tmp_path):
        # One line parses as a bare dict; must still be read as JSONL.
        spans = self._two_spans()[:1]
        path = write_trace(tmp_path / "one.jsonl", spans)
        assert load_spans(path) == spans

    def test_chrome_trace_loads_as_json(self, tmp_path):
        spans = self._two_spans()
        path = write_trace(tmp_path / "trace.json", spans)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for e in complete:
            assert e["ts"] >= 0  # rebased to trace start
            assert e["dur"] >= 0
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["args"]["name"] == "main" for e in meta)

    def test_chrome_trace_labels_worker_pids(self):
        spans = self._two_spans()
        fake = dict(spans[0])
        fake["pid"] = spans[0]["pid"] + 1
        doc = chrome_trace(spans + [fake])
        names = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert names == {"main", f"worker-{fake['pid']}"}

    def test_load_chrome_trace_back(self, tmp_path):
        spans = self._two_spans()
        path = write_trace(tmp_path / "trace.json", spans)
        back = load_spans(path)
        assert {s["name"] for s in back} == {"outer", "inner"}
        # args survive; id/parent links do not (format limitation).
        assert any(s["args"] == {"k": 1} for s in back)

    def test_to_jsonl_one_line_per_span(self):
        spans = self._two_spans()
        text = to_jsonl(spans)
        assert len(text.splitlines()) == 2
        assert all(json.loads(line) for line in text.splitlines())


class TestSummarize:
    def test_aggregates_by_name(self):
        spans = [
            {"name": "a", "dur_ns": 2_000_000},
            {"name": "a", "dur_ns": 4_000_000},
            {"name": "b", "dur_ns": 1_000_000},
        ]
        rows = summarize_spans(spans)
        assert [r["name"] for r in rows] == ["a", "b"]  # total desc
        a = rows[0]
        assert a["count"] == 2
        assert a["total_ms"] == pytest.approx(6.0)
        assert a["mean_ms"] == pytest.approx(3.0)
        assert a["max_ms"] == pytest.approx(4.0)

    def test_empty(self):
        assert summarize_spans([]) == []
