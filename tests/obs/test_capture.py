"""Cross-process observability: capture/absorb and engine integration."""

import os

import pytest

from repro import obs
from repro.pipeline import CellSpec, Engine
from repro.pipeline.store import CacheStore
from repro.quant.config import QuantConfig


@pytest.fixture
def clean_obs():
    """Fresh global registry + tracer before and after the test."""
    obs.reset()
    yield
    obs.reset()


def _specs(n=3):
    dtypes = ["int4_asym", "int3_asym", "fp4"]
    return [
        CellSpec(
            model="opt-1.3b",
            dataset="wikitext",
            quant=QuantConfig(dtype=dtypes[i % len(dtypes)]),
            quick=True,
            n_items=2,
        )
        for i in range(n)
    ]


class TestCapture:
    def test_capture_isolates_metrics(self, clean_obs):
        obs.counter("outer").inc()
        with obs.capture(tracing=False) as cap:
            obs.counter("inner").inc(5)
        snap = obs.snapshot()
        # The block's emissions went to the captured registry only.
        assert snap["counters"] == {"outer": 1}
        assert {r["name"]: r["value"] for r in cap.metrics} == {"inner": 5}

    def test_capture_collects_spans_and_restores_state(self, clean_obs):
        assert not obs.tracing_enabled()
        with obs.capture(tracing=True) as cap:
            with obs.span("work"):
                pass
        assert not obs.tracing_enabled()
        assert obs.get_tracer().spans() == []
        assert [s["name"] for s in cap.spans] == ["work"]

    def test_capture_preserves_preexisting_spans(self, clean_obs):
        obs.set_tracing(True)
        with obs.span("before"):
            pass
        with obs.capture(tracing=True) as cap:
            with obs.span("during"):
                pass
        names = [s["name"] for s in obs.get_tracer().spans()]
        assert names == ["before"]
        assert [s["name"] for s in cap.spans] == ["during"]

    def test_absorb_capture_merges(self, clean_obs):
        with obs.capture(tracing=True) as cap:
            obs.counter("n").inc(2)
            with obs.span("worker_work"):
                pass
        obs.counter("n").inc(1)
        obs.absorb_capture(cap.spans, cap.metrics)
        assert obs.snapshot()["counters"]["n"] == 3
        assert [s["name"] for s in obs.get_tracer().spans()] == ["worker_work"]


class TestEngineObservability:
    def test_cache_counters_match_engine_stats(self, clean_obs, tmp_path):
        store = CacheStore(str(tmp_path))
        specs = _specs(2)
        with Engine(store=store) as engine:
            engine.run(specs)  # cold: misses + puts
            engine2 = Engine(store=CacheStore(str(tmp_path)))
            engine2.run(specs)  # warm: hits
        snap = obs.snapshot()["counters"]
        assert snap["pipeline.cache.misses"] == store.misses
        assert snap["pipeline.cache.puts"] >= len(specs)
        assert snap["pipeline.cache.hits"] == engine2.store.hits
        assert engine2.store.hits == len(specs)

    def test_cell_histogram_labelled_by_kind(self, clean_obs, tmp_path):
        with Engine(store=CacheStore(str(tmp_path))) as engine:
            engine.run(_specs(1))
        hists = obs.snapshot()["histograms"]
        assert hists["pipeline.cell_seconds{kind=ppl}"]["count"] == 1

    def test_memo_hits_counted(self, clean_obs, tmp_path):
        spec = _specs(1)[0]
        with Engine(store=CacheStore(str(tmp_path))) as engine:
            engine.run([spec])
            engine.run([spec])  # second run served from the memo
        assert obs.snapshot()["counters"]["pipeline.memo.hits"] == 1


class TestWorkerTraceMerging:
    def test_worker_spans_absorbed_across_processes(self, clean_obs, tmp_path):
        obs.set_tracing(True)
        specs = _specs(3)
        # Two models force at least two worker batches.
        specs.append(
            CellSpec(
                model="phi-2b",
                dataset="wikitext",
                quant=QuantConfig(dtype="int4_asym"),
                quick=True,
                n_items=2,
            )
        )
        with Engine(store=CacheStore(str(tmp_path)), jobs=2) as engine:
            engine.run(specs)
        spans = obs.get_tracer().spans()
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        assert len(by_name["pipeline.worker_batch"]) >= 2
        assert len(by_name["pipeline.cell"]) == len(specs)
        # Worker spans keep their own pids — the merged trace spans
        # more than one process.
        pids = {s["pid"] for s in spans}
        assert os.getpid() in pids
        assert len(pids) >= 2
        # Nesting survives the merge: cells parent to worker batches.
        by_id = {s["id"]: s for s in spans}
        for cell in by_name["pipeline.cell"]:
            parent = by_id[cell["parent"]]
            assert parent["name"] == "pipeline.worker_batch"
            assert parent["pid"] == cell["pid"]

    def test_worker_metrics_merge_without_double_count(self, clean_obs, tmp_path):
        store = CacheStore(str(tmp_path))
        specs = _specs(3)
        with Engine(store=store, jobs=2) as engine:
            engine.run(specs)
        counters = obs.snapshot()["counters"]
        # Worker puts merged exactly once into the parent registry.
        assert counters["pipeline.cache.puts"] == len(specs)
        assert counters["pipeline.cells.computed"] == len(specs)
