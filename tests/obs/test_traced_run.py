"""Tracing must not change results: traced runs are row-identical."""

import json

import pytest

from repro import obs
from repro.experiments.runner import main as runner_main


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


def test_traced_quick_run_row_identical(tmp_path, capsys):
    plain_dir = tmp_path / "plain"
    traced_dir = tmp_path / "traced"
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"

    assert runner_main(["--quick", "fig07", "--json", str(plain_dir)]) == 0
    assert (
        runner_main(
            [
                "--quick",
                "fig07",
                "--json",
                str(traced_dir),
                "--trace",
                str(trace_path),
                "--metrics",
                str(metrics_path),
            ]
        )
        == 0
    )
    capsys.readouterr()

    # Row-identical experiment output.
    plain = json.loads((plain_dir / "fig07.json").read_text())
    traced = json.loads((traced_dir / "fig07.json").read_text())
    assert plain == traced

    # The trace is valid chrome trace_event JSON with the expected spans.
    doc = json.loads(trace_path.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert "experiment" in names
    assert "pipeline.engine.run" in names  # hw/dse spans vanish when warm-cached

    # The metrics snapshot's cache counters agree with engine.stats()
    # recorded in _run_meta.json for the same invocation.
    meta = json.loads((traced_dir / "_run_meta.json").read_text())
    counters = json.loads(metrics_path.read_text())["counters"]
    cache = meta["cache"]
    assert counters.get("pipeline.cache.hits", 0) == cache["hits"]
    assert counters.get("pipeline.cache.misses", 0) == cache["misses"]
    assert meta["metrics"]["counters"] == counters


def test_untraced_run_writes_no_trace(tmp_path, capsys):
    out = tmp_path / "json"
    assert runner_main(["--quick", "fig07", "--json", str(out)]) == 0
    capsys.readouterr()
    meta = json.loads((out / "_run_meta.json").read_text())
    # Metrics still recorded (counters are always on); tracing was not.
    assert "metrics" in meta
    assert not obs.tracing_enabled()
    assert obs.get_tracer().spans() == []
