"""Tests for ``bitmod-repro obs`` and the runner's --trace/--metrics."""

import json

import pytest

from repro.obs.cli import main as obs_main
from repro.obs.trace import Tracer, write_trace


@pytest.fixture
def trace_jsonl(tmp_path):
    t = Tracer(enabled=True)
    with t.span("outer", k=1):
        with t.span("inner"):
            pass
    return write_trace(tmp_path / "trace.jsonl", t.spans())


class TestObsCli:
    def test_no_command_prints_help(self, capsys):
        assert obs_main([]) == 1
        assert "summarize" in capsys.readouterr().out

    def test_summarize(self, trace_jsonl, capsys):
        assert obs_main(["summarize", str(trace_jsonl)]) == 0
        out = capsys.readouterr().out
        assert "outer" in out
        assert "inner" in out
        assert "2 spans, 2 names, 1 process(es)" in out

    def test_summarize_top_truncates(self, trace_jsonl, capsys):
        assert obs_main(["summarize", str(trace_jsonl), "--top", "1"]) == 0
        assert "1 more span names" in capsys.readouterr().out

    def test_summarize_missing_file(self, tmp_path, capsys):
        assert obs_main(["summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_convert_roundtrips_json_loads(self, trace_jsonl, tmp_path, capsys):
        dest = tmp_path / "chrome.json"
        assert obs_main(["convert", str(trace_jsonl), str(dest)]) == 0
        doc = json.loads(dest.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert names == {"outer", "inner"}
        # The converted file is itself summarizable.
        assert obs_main(["summarize", str(dest)]) == 0

    def test_diff_snapshots(self, tmp_path, capsys):
        before = {"counters": {"pipeline.cache.hits": 0}, "gauges": {}, "histograms": {}}
        after = {"counters": {"pipeline.cache.hits": 24}, "gauges": {}, "histograms": {}}
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(before))
        b.write_text(json.dumps(after))
        assert obs_main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.cache.hits: 0 -> 24 (+24)" in out

    def test_diff_accepts_run_meta(self, tmp_path, capsys):
        snap = {"counters": {"n": 1}, "gauges": {}, "histograms": {}}
        meta = {"experiments": ["fig07"], "metrics": snap}
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(meta))
        b.write_text(json.dumps(snap))
        assert obs_main(["diff", str(a), str(b)]) == 0
        assert "no metric changes" in capsys.readouterr().out


class TestRunnerDispatch:
    def test_obs_subcommand_reached_from_runner(self, trace_jsonl, capsys):
        from repro.experiments.runner import main as runner_main

        assert runner_main(["obs", "summarize", str(trace_jsonl)]) == 0
        assert "outer" in capsys.readouterr().out

    def test_value_option_does_not_eat_subcommand_name(self, tmp_path):
        from repro.experiments.runner import _subcommand_index

        # "--json obs" is an option value, not the obs subcommand.
        assert _subcommand_index(["--json", "obs", "fig07"], "obs") == -1
        assert _subcommand_index(["obs", "summarize", "x"], "obs") == 0
        assert _subcommand_index(["--quick", "dse"], "dse") == 1

    def test_bad_log_level_rejected(self, capsys):
        from repro.experiments.runner import main as runner_main

        assert runner_main(["fig07", "--log-level", "nope"]) == 2
        assert "error" in capsys.readouterr().err
