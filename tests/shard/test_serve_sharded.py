"""The serving stack over a sharded engine: server, batcher, hot swap."""

import asyncio

import numpy as np
import pytest

from repro.models import get_model_config
from repro.models.transformer import CausalLM
from repro.quant.config import QuantConfig
from repro.serve.artifact import save_artifact
from repro.serve.engine import GenerationConfig, InferenceEngine
from repro.serve.server import ServeServer
from repro.shard import DeviceMesh, ShardedEngine

GEN = GenerationConfig(max_new_tokens=5)
CFG = get_model_config("opt-1.3b")


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    d = tmp_path_factory.mktemp("serve")
    path = d / "m.rpro"
    save_artifact(path, CausalLM(CFG, seed=0), QuantConfig(dtype="int4_sym"))
    return path


def _prompts(n, seed=21):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, CFG.sim_vocab, size=int(rng.integers(4, 12)))
        for _ in range(n)
    ]


def _run(coro):
    return asyncio.run(coro)


class TestServerOverShardedEngine:
    def test_server_serves_identical_tokens(self, artifact_path):
        from repro.serve.artifact import load_artifact

        art = load_artifact(artifact_path)
        ref = InferenceEngine.from_artifact(art)
        prompts = _prompts(6)
        expected = [ref.generate(p, GEN).generated for p in prompts]

        async def serve():
            eng = ShardedEngine.from_artifact(art, DeviceMesh(tp=2))
            server = ServeServer(eng, max_batch_tokens=64)
            await server.start()
            ids = [await server.submit(p, GEN) for p in prompts]
            results = [await server.result(i) for i in ids]
            await server.stop()
            return results

        results = _run(serve())
        assert [r.tokens for r in results] == expected

    def test_hot_swap_to_sharded(self, artifact_path):
        """reload_artifact(mesh=...) brings the same weights up sharded;
        token streams are unchanged across the swap."""
        from repro.serve.artifact import load_artifact

        art = load_artifact(artifact_path)
        prompts = _prompts(4, seed=5)

        async def serve():
            server = ServeServer(InferenceEngine.from_artifact(art))
            await server.start()
            before = [(await server.generate(p, GEN)).tokens for p in prompts]
            old = server.reload_artifact(artifact_path, mesh=DeviceMesh(tp=2))
            assert not isinstance(old, ShardedEngine)
            assert isinstance(server.batcher.engine, ShardedEngine)
            after = [(await server.generate(p, GEN)).tokens for p in prompts]
            await server.stop()
            return before, after

        before, after = _run(serve())
        assert before == after
