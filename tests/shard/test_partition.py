"""Exactness of packed-tensor slicing and float-weight partitioning.

The invariant everything else rests on:
``unpack(slice_packed(p, dim, a, b)) == unpack(p)[slice]`` — bit for
bit, across datatypes (symmetric/asymmetric integers, BitMoD floats),
granularities, group-aligned and sub-group slices.
"""

import numpy as np
import pytest

from repro.models import get_model_config
from repro.models.transformer import CausalLM
from repro.quant.config import QuantConfig
from repro.quant.packing import pack_tensor, unpack_tensor
from repro.shard import DeviceMesh, ShardError, shard_weights, slice_packed

DTYPES = ["int4_sym", "int3_asym", "int5_asym", "bitmod_fp4", "bitmod_fp3", "fp4"]


def _pack(rng, dtype, granularity="group", group_size=64, shape=(32, 256)):
    w = rng.standard_normal(shape)
    qc = QuantConfig(dtype=dtype, granularity=granularity, group_size=group_size)
    return pack_tensor(w, qc), qc


class TestSlicePackedRows:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_dim0_exact(self, rng, dtype):
        p, qc = _pack(rng, dtype)
        full = unpack_tensor(p, qc)
        for a, b in [(0, 16), (16, 32), (8, 24), (0, 32)]:
            part = slice_packed(p, 0, a, b)
            qc_part = qc.with_(group_size=part.group_size)
            np.testing.assert_array_equal(
                unpack_tensor(part, qc_part), full[a:b]
            )

    def test_dim0_out_of_range(self, rng):
        p, _qc = _pack(rng, "int4_sym")
        with pytest.raises(ShardError):
            slice_packed(p, 0, 16, 40)


class TestSlicePackedColumns:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_group_aligned_exact(self, rng, dtype):
        p, qc = _pack(rng, dtype, group_size=64)
        full = unpack_tensor(p, qc)
        for a, b in [(0, 128), (128, 256), (64, 192)]:
            part = slice_packed(p, 1, a, b)
            qc_part = qc.with_(group_size=part.group_size)
            np.testing.assert_array_equal(
                unpack_tensor(part, qc_part), full[:, a:b]
            )

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_subgroup_exact(self, rng, dtype):
        """Slices narrower than a group subdivide it exactly."""
        p, qc = _pack(rng, dtype, group_size=128)
        full = unpack_tensor(p, qc)
        for a, b in [(0, 64), (64, 128), (192, 256)]:
            part = slice_packed(p, 1, a, b)
            assert part.group_size == b - a
            qc_part = qc.with_(group_size=part.group_size)
            np.testing.assert_array_equal(
                unpack_tensor(part, qc_part), full[:, a:b]
            )

    def test_channel_granularity_exact(self, rng):
        """Channel-granularity images slice like one group per row."""
        p, qc = _pack(rng, "int4_sym", granularity="channel", group_size=128)
        full = unpack_tensor(p, qc)
        part = slice_packed(p, 1, 0, 128)
        np.testing.assert_array_equal(
            unpack_tensor(part, qc.with_(group_size=part.group_size)),
            full[:, :128],
        )

    def test_unalignable_slice_rejected(self, rng):
        p, _qc = _pack(rng, "int4_sym", group_size=64)
        with pytest.raises(ShardError, match="group-alignable"):
            slice_packed(p, 1, 48, 144)  # straddles groups unevenly

    def test_bad_dim_rejected(self, rng):
        p, _qc = _pack(rng, "int4_sym")
        with pytest.raises(ShardError):
            slice_packed(p, 2, 0, 8)


class TestShardWeights:
    @pytest.mark.parametrize("model", ["opt-1.3b", "llama-2-7b"])
    def test_column_parallel_rows_concatenate_back(self, model):
        """tp slices of every split tensor reassemble the original."""
        cfg = get_model_config(model)
        m = CausalLM(cfg, seed=0)
        mesh = DeviceMesh(tp=4)
        grid = shard_weights(m.weights, cfg, mesh)
        assert len(grid) == 1 and len(grid[0]) == 4
        for name, w in m.weights.items():
            parts = [grid[0][r][name] for r in range(4)]
            if parts[0].shape == w.shape:  # replicated
                for p in parts:
                    np.testing.assert_array_equal(p, w)
            else:
                np.testing.assert_array_equal(np.concatenate(parts, axis=0), w)

    def test_pipeline_stages_partition_layers(self):
        cfg = get_model_config("opt-1.3b")  # 4 sim layers
        m = CausalLM(cfg, seed=0)
        grid = shard_weights(m.weights, cfg, DeviceMesh(pp=2))
        stage0, stage1 = grid[0][0], grid[1][0]
        assert "embed" in stage0 and "embed" not in stage1
        assert "lm_head" in stage1 and "lm_head" not in stage0
        assert "layers.0.q_proj" in stage0 and "layers.0.q_proj" not in stage1
        assert "layers.3.q_proj" in stage1 and "layers.3.q_proj" not in stage0

    def test_sum_mode_slices_contraction_dim(self):
        cfg = get_model_config("llama-2-7b")
        m = CausalLM(cfg, seed=0)
        grid = shard_weights(m.weights, cfg, DeviceMesh(tp=2, reduce="sum"))
        w = m.weights["layers.0.down_proj"]
        parts = [grid[0][r]["layers.0.down_proj"] for r in range(2)]
        np.testing.assert_array_equal(np.concatenate(parts, axis=1), w)
