"""Sharded artifact sets on disk: round trips, digests, loud failures."""

import numpy as np
import pytest

from repro.models import get_model_config
from repro.models.transformer import CausalLM
from repro.quant.config import QuantConfig
from repro.serve.artifact import load_artifact, save_artifact
from repro.serve.engine import GenerationConfig, InferenceEngine
from repro.shard import (
    DeviceMesh,
    ShardTopologyError,
    ShardedEngine,
    load_sharded_artifact,
    mesh_digest,
    save_sharded_artifact,
    shard_paths,
)

GEN = GenerationConfig(max_new_tokens=5)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    cfg = get_model_config("llama-2-7b")
    model = CausalLM(cfg, seed=0)
    d = tmp_path_factory.mktemp("full")
    return save_artifact(d / "full.rpro", model, QuantConfig(dtype="int4_sym"))


def _prompt(n=10, seed=11):
    cfg = get_model_config("llama-2-7b")
    return np.random.default_rng(seed).integers(0, cfg.sim_vocab, size=n)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "mesh",
        [DeviceMesh(tp=2), DeviceMesh(tp=2, pp=2)],
        ids=["tp2", "tp2pp2"],
    )
    def test_disk_round_trip_byte_identical(self, artifact, tmp_path, mesh):
        paths = save_sharded_artifact(tmp_path / "set", artifact, mesh)
        assert paths == shard_paths(tmp_path / "set", mesh.n_devices)
        assert all(p.exists() for p in paths)

        shards, loaded_mesh = load_sharded_artifact(tmp_path / "set")
        assert loaded_mesh == mesh
        eng = ShardedEngine.from_shard_set(shards)
        ref = InferenceEngine.from_artifact(artifact)
        prompt = _prompt()
        assert eng.generate(prompt, GEN).generated == ref.generate(prompt, GEN).generated
        np.testing.assert_array_equal(
            eng.model.logits(prompt), ref.model.logits(prompt)
        )

    def test_headers_describe_topology(self, artifact, tmp_path):
        mesh = DeviceMesh(tp=2, pp=2)
        paths = save_sharded_artifact(tmp_path / "set", artifact, mesh)
        digest = mesh_digest(artifact, mesh)
        for i, path in enumerate(paths):
            h = load_artifact(path).shard_header
            assert h["shard_index"] == i
            assert h["n_shards"] == 4
            assert h["mesh_digest"] == digest
            assert h["mesh"] == mesh.to_dict()
            lo, hi = h["layers"]
            assert 0 <= lo < hi

    def test_digest_binds_mesh_and_source(self, artifact, tmp_path):
        d1 = mesh_digest(artifact, DeviceMesh(tp=2))
        assert d1 == mesh_digest(artifact, DeviceMesh(tp=2))
        assert d1 != mesh_digest(artifact, DeviceMesh(tp=4))
        assert d1 != mesh_digest(artifact, DeviceMesh(tp=2, topology="fully_connected"))
        cfg = get_model_config("llama-2-7b")
        other = save_artifact(
            tmp_path / "o.rpro", CausalLM(cfg, seed=1), QuantConfig(dtype="int4_sym")
        )
        assert d1 != mesh_digest(other, DeviceMesh(tp=2))


class TestLoadFailures:
    def test_empty_directory(self, tmp_path):
        with pytest.raises(ShardTopologyError, match="no shard containers"):
            load_sharded_artifact(tmp_path)

    def test_missing_shard(self, artifact, tmp_path):
        paths = save_sharded_artifact(tmp_path / "set", artifact, DeviceMesh(tp=4))
        paths[2].unlink()
        with pytest.raises(ShardTopologyError) as err:
            load_sharded_artifact(tmp_path / "set")
        assert err.value.to_dict()["missing"] == [2]
        assert err.value.to_dict()["error"] == "shard_topology_mismatch"

    def test_mixed_shard_sets(self, artifact, tmp_path):
        """A shard from a different pack poisons the directory."""
        save_sharded_artifact(tmp_path / "set", artifact, DeviceMesh(tp=2))
        cfg = get_model_config("llama-2-7b")
        other = save_artifact(
            tmp_path / "o.rpro", CausalLM(cfg, seed=1), QuantConfig(dtype="int4_sym")
        )
        foreign = save_sharded_artifact(tmp_path / "other", other, DeviceMesh(tp=2))
        (tmp_path / "set" / foreign[0].name).write_bytes(foreign[0].read_bytes())
        with pytest.raises(ShardTopologyError, match="different packs"):
            load_sharded_artifact(tmp_path / "set")

    def test_single_device_artifact_in_shard_dir(self, artifact, tmp_path):
        d = tmp_path / "set"
        d.mkdir()
        cfg = get_model_config("llama-2-7b")
        save_artifact(
            d / "shard-00-of-01.rpro", CausalLM(cfg, seed=0),
            QuantConfig(dtype="int4_sym"),
        )
        with pytest.raises(ShardTopologyError, match="no shard header"):
            load_sharded_artifact(d)


class TestShardSubArtifacts:
    def test_instantiate_guard(self, artifact, tmp_path):
        paths = save_sharded_artifact(tmp_path / "set", artifact, DeviceMesh(tp=2))
        sub = load_artifact(paths[0])
        with pytest.raises(ValueError, match="shard 0 of 2"):
            sub.instantiate()

    def test_from_shard_set_rejects_bad_sets(self, artifact, tmp_path):
        with pytest.raises(ShardTopologyError, match="empty"):
            ShardedEngine.from_shard_set([])
        with pytest.raises(ShardTopologyError, match="no shard header"):
            ShardedEngine.from_shard_set([artifact])
        paths = save_sharded_artifact(tmp_path / "set", artifact, DeviceMesh(tp=2))
        shards = [load_artifact(p) for p in paths]
        with pytest.raises(ShardTopologyError, match="out of order"):
            ShardedEngine.from_shard_set(list(reversed(shards)))
        with pytest.raises(ShardTopologyError, match="out of order"):
            ShardedEngine.from_shard_set(shards[:1])
