"""DeviceMesh / ShardSpec semantics: validation, layer ranges, specs."""

import pytest

from repro.models import get_model_config
from repro.models.transformer import CausalLM
from repro.shard import (
    DeviceMesh,
    ShardError,
    ShardSpec,
    partition_specs,
)


class TestDeviceMesh:
    def test_defaults(self):
        mesh = DeviceMesh()
        assert mesh.tp == 1 and mesh.pp == 1
        assert mesh.topology == "ring" and mesh.reduce == "gather"
        assert mesh.n_devices == 1

    @pytest.mark.parametrize("tp,pp", [(0, 1), (1, 0), (-2, 1)])
    def test_rejects_degenerate_grid(self, tp, pp):
        with pytest.raises(ShardError):
            DeviceMesh(tp=tp, pp=pp)

    def test_rejects_unknown_topology_and_reduce(self):
        with pytest.raises(ShardError, match="topology"):
            DeviceMesh(topology="torus")
        with pytest.raises(ShardError, match="reduce"):
            DeviceMesh(reduce="avg")

    def test_round_trip_dict(self):
        mesh = DeviceMesh(tp=4, pp=2, topology="fully_connected", reduce="sum")
        assert DeviceMesh.from_dict(mesh.to_dict()) == mesh

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ShardError, match="unknown mesh keys"):
            DeviceMesh.from_dict({"tp": 2, "shard_count": 2})

    def test_layer_ranges_cover_contiguously(self):
        ranges = DeviceMesh(pp=3).layer_ranges(8)
        assert ranges == [(0, 3), (3, 6), (6, 8)]
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_stage_of(self):
        mesh = DeviceMesh(pp=2)
        assert [mesh.stage_of(i, 4) for i in range(4)] == [0, 0, 1, 1]
        with pytest.raises(ShardError):
            mesh.stage_of(4, 4)

    def test_validate_model_structured_error(self):
        cfg = get_model_config("llama-3-8b")  # sim_kv_heads=2
        mesh = DeviceMesh(tp=4)
        with pytest.raises(ShardError) as err:
            mesh.validate_model(cfg)
        body = err.value.to_dict()
        assert body["error"] == "shard_incompatible"
        assert body["problems"]  # the structured reason list
        assert any("KV heads" in p for p in body["problems"])

    def test_pipeline_deeper_than_layers_rejected(self):
        cfg = get_model_config("opt-1.3b")  # sim_layers=4
        with pytest.raises(ShardError):
            DeviceMesh(pp=5).validate_model(cfg)


class TestShardSpec:
    def test_slice_bounds_partition_exactly(self):
        spec = ShardSpec("split_out")
        bounds = [spec.slice_bounds(256, r, 4) for r in range(4)]
        assert bounds == [(0, 64), (64, 128), (128, 192), (192, 256)]

    def test_indivisible_rejected(self):
        with pytest.raises(ShardError):
            ShardSpec("split_out").slice_bounds(10, 0, 3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ShardError):
            ShardSpec("diagonal")


class TestPartitionSpecs:
    @pytest.mark.parametrize("model", ["opt-1.3b", "llama-2-7b"])
    @pytest.mark.parametrize("reduce", ["gather", "sum"])
    def test_every_weight_resolves(self, model, reduce):
        """Every tensor the model actually generates has a spec."""
        cfg = get_model_config(model)
        m = CausalLM(cfg, seed=0)
        specs = partition_specs(cfg, DeviceMesh(tp=2, reduce=reduce))
        for name in m.weights:
            assert name in specs, name

    def test_reduce_mode_sets_row_parallel_kind(self):
        cfg = get_model_config("llama-2-7b")
        gather = partition_specs(cfg, DeviceMesh(tp=2, reduce="gather"))
        summed = partition_specs(cfg, DeviceMesh(tp=2, reduce="sum"))
        assert gather["layers.0.down_proj"].kind == "split_out"
        assert summed["layers.0.down_proj"].kind == "split_in"
        # Column-parallel stays split_out in both modes.
        assert gather["layers.0.up_proj"].kind == "split_out"
        assert summed["layers.0.up_proj"].kind == "split_out"

    def test_norms_and_embed_replicate(self):
        cfg = get_model_config("opt-1.3b")
        specs = partition_specs(cfg, DeviceMesh(tp=2))
        assert specs["embed"].kind == "replicate"
        assert specs["final_norm"].kind == "replicate"
        assert specs["layers.0.attn_norm"].kind == "replicate"
        assert specs["lm_head"].kind == "split_out"
