"""The multi-chip interconnect cost model and sharded simulator."""

import pytest

from repro.hw.baselines import make_accelerator
from repro.hw.multichip import (
    LinkSpec,
    collective_seconds,
    simulate_sharded,
    simulate_sharded_plan,
    wire_bytes_per_device,
)
from repro.hw.simulator import simulate
from repro.models.zoo import get_model_config

LINK = LinkSpec()


@pytest.fixture(scope="module")
def bitmod():
    return make_accelerator("bitmod")


@pytest.fixture(scope="module")
def llama():
    return get_model_config("llama-2-7b")


class TestLinkSpec:
    def test_defaults(self):
        assert LINK.gbps == 100.0 and LINK.latency_us == 1.0

    @pytest.mark.parametrize("kw", [{"gbps": 0}, {"gbps": -1}, {"latency_us": -1}])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            LinkSpec(**kw)


class TestWireBytes:
    def test_single_device_is_free(self):
        assert wire_bytes_per_device("all_reduce", 1024, 1) == 0.0
        assert wire_bytes_per_device("all_gather", 1024, 1) == 0.0

    def test_schedule_optimal_fractions(self):
        # Ring all-reduce: 2(n-1)/n * B per device; all-gather half that.
        assert wire_bytes_per_device("all_reduce", 1000, 4) == pytest.approx(1500)
        assert wire_bytes_per_device("all_gather", 1000, 4) == pytest.approx(750)
        assert wire_bytes_per_device("send", 1000, 2) == 1000

    def test_bytes_topology_invariant(self):
        """Both topologies run schedule-optimal collectives — only time
        differs."""
        for op in ("all_reduce", "all_gather"):
            ring = wire_bytes_per_device(op, 4096, 8, "ring")
            fc = wire_bytes_per_device(op, 4096, 8, "fully_connected")
            assert ring == fc

    def test_unknown_op_and_topology(self):
        with pytest.raises(ValueError, match="unknown collective"):
            wire_bytes_per_device("broadcast", 1, 2)
        with pytest.raises(ValueError, match="unknown topology"):
            wire_bytes_per_device("all_reduce", 1, 2, "torus")


class TestCollectiveSeconds:
    def test_fully_connected_beats_ring_beyond_two(self):
        for n in (4, 8):
            ring = collective_seconds("all_reduce", 1 << 20, n, LINK, "ring")
            fc = collective_seconds(
                "all_reduce", 1 << 20, n, LINK, "fully_connected"
            )
            assert fc < ring

    def test_two_device_topologies_coincide(self):
        """At n=2 the ring *is* fully connected: identical time."""
        ring = collective_seconds("all_reduce", 1 << 20, 2, LINK, "ring")
        fc = collective_seconds("all_reduce", 1 << 20, 2, LINK, "fully_connected")
        assert ring == pytest.approx(fc)

    def test_send_charges_full_payload_plus_hop(self):
        s = collective_seconds("send", 1e9, 1, LINK)
        assert s == pytest.approx(1e9 / (LINK.gbps * 1e9) + LINK.latency_us * 1e-6)


class TestSimulateSharded:
    def test_1x1_reproduces_single_chip(self, bitmod, llama):
        for task in ("discriminative", "generative"):
            single = simulate(llama, bitmod, task, 4)
            sharded = simulate_sharded(llama, bitmod, task, 4)
            assert sharded.cycles == single.cycles
            assert sharded.energy.total_uj == single.energy.total_uj
            assert sharded.interconnect_bytes == 0.0

    def test_scaling_curve_monotone(self, bitmod, llama):
        """More shards: less per-chip time, more interconnect bytes."""
        results = [
            simulate_sharded(llama, bitmod, "generative", 4, shards=s)
            for s in (1, 2, 4, 8)
        ]
        compute = [r.cycles - r.interconnect_cycles for r in results]
        assert compute == sorted(compute, reverse=True)
        wire = [r.interconnect_bytes for r in results]
        assert wire == sorted(wire)
        assert wire[0] == 0.0 and wire[1] > 0.0

    def test_topology_changes_time_not_bytes(self, bitmod, llama):
        ring = simulate_sharded(
            llama, bitmod, "generative", 4, shards=8, topology="ring"
        )
        fc = simulate_sharded(
            llama, bitmod, "generative", 4, shards=8, topology="fully_connected"
        )
        assert ring.interconnect_bytes == fc.interconnect_bytes
        assert fc.interconnect_cycles < ring.interconnect_cycles
        assert fc.cycles < ring.cycles

    def test_pipeline_charges_sends(self, bitmod, llama):
        r = simulate_sharded(llama, bitmod, "generative", 4, stages=2)
        assert r.interconnect_bytes > 0
        assert r.n_devices == 2

    def test_divisibility_validation(self, bitmod):
        cfg = get_model_config("llama-3-8b")  # 8 KV heads
        with pytest.raises(ValueError, match="KV heads"):
            simulate_sharded(cfg, bitmod, "generative", 4, shards=16)
        with pytest.raises(ValueError, match="pipeline"):
            simulate_sharded(cfg, bitmod, "generative", 4, stages=64)
        with pytest.raises(ValueError, match="at least 1x1"):
            simulate_sharded(cfg, bitmod, "generative", 4, shards=0)
        with pytest.raises(ValueError, match="unknown topology"):
            simulate_sharded(cfg, bitmod, "generative", 4, shards=2, topology="mesh")

    def test_energy_sums_all_chips(self, bitmod, llama):
        """Sharding splits the weights: total DRAM energy stays ~flat,
        it does not multiply by the device count."""
        one = simulate_sharded(llama, bitmod, "generative", 4, shards=1)
        four = simulate_sharded(llama, bitmod, "generative", 4, shards=4)
        assert four.energy.dram_uj == pytest.approx(one.energy.dram_uj, rel=0.3)

    def test_plan_reports_mean_bits(self, bitmod, llama):
        gemm_bits = {"q_proj": 4.0, "k_proj": 4.0}
        r = simulate_sharded_plan(
            llama, bitmod, "generative", gemm_bits, shards=2
        )
        assert 4.0 < r.weight_bits < 16.0
        assert r.shards == 2
