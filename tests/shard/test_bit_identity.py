"""The sharding acceptance bar: sharded == single-device, byte for byte.

Parametrized over datatypes, mixed-precision plans, KV quantization,
1/2/4-shard meshes and pipeline depths, asserting that the sharded
engine's greedy token streams — and, under the default ``"gather"``
reduce mode, every logit row — are byte-identical to the single-device
engine built from the same artifact.  ``"sum"`` mode (classic
all-reduce with a pinned accumulation order) must stay token-identical
and deterministic.

Prefix-cache reuse is gated off on sharded engines (snapshots are
whole-model caches); the gate is tested here, along with the
equivalence of a sharded run against a prefix-cache-enabled
single-device run.
"""

import numpy as np
import pytest

from repro.models import get_model_config
from repro.models.transformer import CausalLM
from repro.policy import QuantPlan, layer_names
from repro.quant.config import QuantConfig
from repro.quant.kv import KVQuantConfig
from repro.serve.artifact import save_artifact
from repro.serve.engine import GenerationConfig, InferenceEngine
from repro.serve.prefix import PrefixKVCache
from repro.shard import (
    PREFIX_CACHE_UNSUPPORTED,
    DeviceMesh,
    ShardError,
    ShardedEngine,
)

GEN = GenerationConfig(max_new_tokens=6)
MESHES = [
    DeviceMesh(tp=1),
    DeviceMesh(tp=2),
    DeviceMesh(tp=4),
    DeviceMesh(tp=2, pp=2),
]


def _prompt(cfg, n=12, seed=7):
    rng = np.random.default_rng(seed)
    return rng.integers(0, cfg.sim_vocab, size=n)


def _artifact(tmp_path, model_name, quant, kv_quant=None, seed=0):
    cfg = get_model_config(model_name)
    model = CausalLM(cfg, seed=seed)
    return save_artifact(tmp_path / "a.rpro", model, quant, kv_quant=kv_quant)


@pytest.fixture(scope="module")
def uniform_artifacts(tmp_path_factory):
    """(model, dtype) -> artifact, built once for the whole module."""
    cache = {}

    def build(model_name, dtype):
        key = (model_name, dtype)
        if key not in cache:
            d = tmp_path_factory.mktemp("uniform")
            cache[key] = _artifact(d, model_name, QuantConfig(dtype=dtype))
        return cache[key]

    return build


class TestUniformArtifacts:
    @pytest.mark.parametrize("model", ["opt-1.3b", "llama-2-7b"])
    @pytest.mark.parametrize("dtype", ["int4_sym", "int3_asym", "bitmod_fp4"])
    @pytest.mark.parametrize("mesh", MESHES, ids=lambda m: f"tp{m.tp}pp{m.pp}")
    def test_gather_mode_byte_identical(self, uniform_artifacts, model, dtype, mesh):
        art = uniform_artifacts(model, dtype)
        cfg = get_model_config(model)
        prompt = _prompt(cfg)
        ref = InferenceEngine.from_artifact(art)
        sharded = ShardedEngine.from_artifact(art, mesh)

        assert sharded.generate(prompt, GEN).generated == ref.generate(prompt, GEN).generated
        np.testing.assert_array_equal(
            sharded.model.logits(prompt), ref.model.logits(prompt)
        )

    @pytest.mark.parametrize("tp", [2, 4])
    def test_sum_mode_token_identical_and_deterministic(
        self, uniform_artifacts, tp
    ):
        art = uniform_artifacts("llama-2-7b", "int4_sym")
        cfg = get_model_config("llama-2-7b")
        prompt = _prompt(cfg)
        ref = InferenceEngine.from_artifact(art).generate(prompt, GEN).generated
        mesh = DeviceMesh(tp=tp, reduce="sum")
        first = ShardedEngine.from_artifact(art, mesh).generate(prompt, GEN)
        second = ShardedEngine.from_artifact(art, mesh).generate(prompt, GEN)
        assert first.generated == ref
        # Fixed rank-order accumulation: bitwise run-to-run stable.
        assert second.generated == first.generated

    def test_gqa_model_at_tp2(self, tmp_path):
        """GQA head groups (sim_kv_heads=2) shard without straddling."""
        art = _artifact(tmp_path, "llama-3-8b", QuantConfig(dtype="int4_sym"))
        cfg = get_model_config("llama-3-8b")
        prompt = _prompt(cfg)
        ref = InferenceEngine.from_artifact(art)
        sharded = ShardedEngine.from_artifact(art, DeviceMesh(tp=2))
        assert sharded.generate(prompt, GEN).generated == ref.generate(prompt, GEN).generated
        np.testing.assert_array_equal(
            sharded.model.logits(prompt), ref.model.logits(prompt)
        )

    def test_gqa_model_rejects_tp4(self, tmp_path):
        art = _artifact(tmp_path, "llama-3-8b", QuantConfig(dtype="int4_sym"))
        with pytest.raises(ShardError, match="KV heads"):
            ShardedEngine.from_artifact(art, DeviceMesh(tp=4))


class TestKVQuantization:
    @pytest.mark.parametrize("mesh", MESHES[1:], ids=lambda m: f"tp{m.tp}pp{m.pp}")
    def test_per_head_kv_quant_byte_identical(self, tmp_path, mesh):
        """Per-head KV scales commute with head partitioning."""
        kv = KVQuantConfig(bits=8, per_head=True)
        art = _artifact(
            tmp_path, "llama-2-7b", QuantConfig(dtype="int4_sym"), kv_quant=kv
        )
        cfg = get_model_config("llama-2-7b")
        prompt = _prompt(cfg)
        ref = InferenceEngine.from_artifact(art)
        sharded = ShardedEngine.from_artifact(art, mesh)
        assert (
            sharded.generate(prompt, GEN).generated
            == ref.generate(prompt, GEN).generated
        )

    def test_per_tensor_kv_quant_rejected(self, tmp_path):
        """per_head=False couples heads across shards: structured error."""
        kv = KVQuantConfig(bits=8, per_head=False)
        art = _artifact(
            tmp_path, "opt-1.3b", QuantConfig(dtype="int4_sym"), kv_quant=kv
        )
        with pytest.raises(ShardError, match="per_head"):
            ShardedEngine.from_artifact(art, DeviceMesh(tp=2))


class TestMixedPrecisionPlans:
    @pytest.fixture(scope="class")
    def plan_artifact(self, tmp_path_factory):
        cfg = get_model_config("opt-1.3b")
        names = layer_names(cfg)
        ladder = (
            QuantConfig(dtype="bitmod_fp3"),
            QuantConfig(dtype="bitmod_fp4", granularity="channel"),
            QuantConfig(dtype="int6_sym"),
            QuantConfig(dtype="int8_sym", group_size=64),
        )
        # Heterogeneous assignment, one layer deliberately FP16.
        mapping = {n: ladder[i % len(ladder)] for i, n in enumerate(names[:-1])}
        plan = QuantPlan.from_mapping(mapping, name="shard-mixed")
        d = tmp_path_factory.mktemp("plan")
        model = CausalLM(cfg, seed=0)
        return save_artifact(d / "mixed.rpro", model, plan)

    @pytest.mark.parametrize("mesh", MESHES, ids=lambda m: f"tp{m.tp}pp{m.pp}")
    def test_plan_artifact_byte_identical(self, plan_artifact, mesh):
        cfg = get_model_config("opt-1.3b")
        prompt = _prompt(cfg)
        ref = InferenceEngine.from_artifact(plan_artifact)
        sharded = ShardedEngine.from_artifact(plan_artifact, mesh)
        assert (
            sharded.generate(prompt, GEN).generated
            == ref.generate(prompt, GEN).generated
        )
        np.testing.assert_array_equal(
            sharded.model.logits(prompt), ref.model.logits(prompt)
        )


class TestPrefixCacheGate:
    def test_prefix_cache_rejected_with_reason(self, tmp_path):
        art = _artifact(tmp_path, "opt-1.3b", QuantConfig(dtype="int4_sym"))
        with pytest.raises(ShardError) as err:
            ShardedEngine.from_artifact(
                art, DeviceMesh(tp=2), prefix_cache=PrefixKVCache()
            )
        assert str(err.value) == PREFIX_CACHE_UNSUPPORTED
        assert err.value.to_dict()["error"] == "shard_incompatible"

    def test_matches_prefix_cached_single_device(self, tmp_path):
        """A sharded run equals a prefix-cache-warmed single-device run
        (reuse must be invisible in the token stream)."""
        art = _artifact(tmp_path, "opt-1.3b", QuantConfig(dtype="int4_sym"))
        cfg = get_model_config("opt-1.3b")
        rng = np.random.default_rng(3)
        shared = rng.integers(0, cfg.sim_vocab, size=16)
        prompts = [
            np.concatenate([shared, rng.integers(0, cfg.sim_vocab, size=4)])
            for _ in range(2)
        ]
        cached = InferenceEngine.from_artifact(art, prefix_cache=PrefixKVCache())
        sharded = ShardedEngine.from_artifact(art, DeviceMesh(tp=2))
        for i, prompt in enumerate(prompts):
            ref_seq = cached.generate(prompt, GEN)
            assert sharded.generate(prompt, GEN).generated == ref_seq.generated
        # The second prompt actually exercised reuse on the reference.
        assert ref_seq.prefix_hit_tokens > 0


class TestEngineSurface:
    def test_inference_engine_from_artifact_dispatches_on_mesh(self, tmp_path):
        art = _artifact(tmp_path, "opt-1.3b", QuantConfig(dtype="int4_sym"))
        eng = InferenceEngine.from_artifact(art, mesh=DeviceMesh(tp=2))
        assert isinstance(eng, ShardedEngine)
        # A 1x1 mesh stays single-device.
        eng1 = InferenceEngine.from_artifact(art, mesh=DeviceMesh())
        assert not isinstance(eng1, ShardedEngine)

    def test_collective_stats_populated(self, tmp_path):
        art = _artifact(tmp_path, "opt-1.3b", QuantConfig(dtype="int4_sym"))
        eng = ShardedEngine.from_artifact(art, DeviceMesh(tp=2))
        cfg = get_model_config("opt-1.3b")
        eng.generate(_prompt(cfg), GEN)
        snap = eng.collective_stats()
        assert snap["tp"] == 2
        assert snap["ops"]["all_gather"]["calls"] > 0
        assert snap["total_wire_bytes"] > 0
        eng.collective.reset()
        assert eng.collective_stats()["total_wire_bytes"] == 0
