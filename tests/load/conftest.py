"""Shared fixtures: a shrunk simulated model so load tests run fast."""

import dataclasses

import pytest

from repro.models import CausalLM, get_model_config


@pytest.fixture(scope="session")
def tiny_config():
    return dataclasses.replace(
        get_model_config("opt-1.3b"),
        sim_layers=2,
        sim_hidden=64,
        sim_heads=4,
        sim_kv_heads=4,
        sim_intermediate=128,
        sim_vocab=512,
    )


@pytest.fixture()
def tiny_model(tiny_config):
    return CausalLM(tiny_config, seed=0)
