"""SLO policy evaluation and the ASCII report block."""

import pytest

from repro.load import SLOPolicy, SLOTarget, default_policy, format_report


def _summary(**overrides):
    base = {
        "n_requests": 100,
        "completed": 96,
        "shed": 3,
        "expired": 1,
        "errors": 0,
        "lost": 0,
        "shed_rate": 0.03,
        "wall_s": 2.5,
        "tokens_per_s": 480.0,
        "decode_tokens": 1200,
        "ttft": {"count": 96, "mean_s": 0.02, "p50_s": 0.015, "p95_s": 0.05,
                 "p99_s": 0.09, "max_s": 0.12},
        "tbt": {"count": 96, "mean_s": 0.005, "p50_s": 0.004, "p95_s": 0.009,
                "p99_s": 0.012, "max_s": 0.02},
        "latency": {"count": 96, "mean_s": 0.1, "p50_s": 0.08, "p95_s": 0.3,
                    "p99_s": 0.6, "max_s": 0.9},
        "prefix_cache": {"hit_rate": 0.4, "entries": 7, "bytes": 1024,
                         "budget_bytes": 4096, "hits": 40, "misses": 60,
                         "inserts": 7, "evictions": 0, "oversize": 0},
    }
    base.update(overrides)
    return base


class TestSLOTargets:
    def test_le_and_ge_ops(self):
        assert SLOTarget("shed_rate", 0.05).check(_summary()).ok
        assert not SLOTarget("shed_rate", 0.01).check(_summary()).ok
        assert SLOTarget("prefix_cache.hit_rate", 0.3, op=">=").check(
            _summary()
        ).ok
        assert not SLOTarget("prefix_cache.hit_rate", 0.5, op=">=").check(
            _summary()
        ).ok

    def test_dotted_paths(self):
        v = SLOTarget("ttft.p95_s", 0.1).check(_summary())
        assert v.ok and v.value == 0.05

    def test_missing_metric_fails_closed(self):
        v = SLOTarget("no.such.metric", 1.0).check(_summary())
        assert not v.ok
        assert v.note == "metric missing"
        assert v.value is None

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown op"):
            SLOTarget("shed_rate", 0.1, op="==").check(_summary())

    def test_verdict_to_dict(self):
        d = SLOTarget("lost", 0.0).check(_summary()).to_dict()
        assert d == {
            "metric": "lost",
            "op": "<=",
            "bound": 0.0,
            "value": 0.0,
            "ok": True,
            "note": None,
        }


class TestSLOPolicy:
    def test_default_policy_passes_healthy_run(self):
        assert default_policy().passed(_summary())

    def test_lost_requests_fail_the_default_policy(self):
        assert not default_policy().passed(_summary(lost=1))

    def test_policy_to_dict(self):
        policy = SLOPolicy("p", [SLOTarget("shed_rate", 0.05),
                                 SLOTarget("lost", 0.0)])
        out = policy.to_dict(_summary())
        assert out["passed"] is True
        assert len(out["verdicts"]) == 2
        out = policy.to_dict(_summary(shed_rate=0.5))
        assert out["passed"] is False


class TestFormatReport:
    def test_contains_key_numbers(self):
        text = format_report(_summary())
        assert "completed     96" in text
        assert "tokens/s" in text
        assert "hit_rate 0.400" in text

    def test_verdict_lines(self):
        summary = _summary(shed_rate=0.5)
        policy = default_policy()
        text = format_report(summary, policy.evaluate(summary))
        assert "[FAIL] shed_rate <= 0.25" in text
        assert "[PASS] ttft.p95_s <= 2" in text

    def test_no_prefix_cache_section_when_disabled(self):
        text = format_report(_summary(prefix_cache=None))
        assert "hit_rate" not in text

    def test_ascii_only(self):
        text = format_report(_summary(), default_policy().evaluate(_summary()))
        text.encode("ascii")  # raises if anything non-ASCII slipped in
