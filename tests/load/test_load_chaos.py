"""Chaos leg: load under injected decode stalls.

CI runs this with ``$REPRO_FAULTS`` carrying a ``serve.decode`` delay
plan; run standalone, the test installs an equivalent plan itself.
Either way the assertion is the same: stalled decodes push requests
past their deadlines, the scheduler evicts them as structured
``DeadlineExceeded``, and the accounting still balances to zero lost.
"""

import os

import pytest

from repro.load import PoissonArrivals, SharedPrefixChat, Workload, run_load
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.serve import InferenceEngine


@pytest.fixture()
def decode_stall_plan():
    """Use the ambient $REPRO_FAULTS plan when CI provides one;
    otherwise install a local decode-stall plan for this test."""
    installed = None
    if not os.environ.get("REPRO_FAULTS"):
        installed = FaultPlan(
            [
                FaultSpec(
                    site="serve.decode",
                    action="delay",
                    delay_s=0.02,
                    times=10**9,
                    p=0.5,
                )
            ]
        )
        faults.set_fault_plan(installed)
    yield
    if installed is not None:
        faults.clear_fault_plan()


class TestDecodeStallUnderLoad:
    def test_deadline_eviction_under_injected_stalls(
        self, tiny_model, decode_stall_plan
    ):
        engine = InferenceEngine(tiny_model)
        workload = Workload(
            arrivals=PoissonArrivals(2000.0),
            traffic=SharedPrefixChat(
                n_prefixes=2,
                prefix_tokens=24,
                suffix_tokens=(2, 4),
                max_new_tokens=(16, 24),
                deadline_s=0.05,
            ),
            n_requests=40,
            seed=0,
            vocab=512,
        )
        result = run_load(engine, workload, max_batch_tokens=128)
        summary = result.summary()
        # Stalls make the deadline unmeetable for most of the stream.
        assert summary["expired"] > 0
        # Degradation stays structured: no lost tasks, no raw errors.
        assert summary["lost"] == 0
        assert summary["errors"] == 0
        assert summary["expired"] + summary["completed"] == 40
        # Expired requests were cancelled mid-flight, not completed.
        for record in result.by_outcome("expired"):
            assert record.tokens is None
