"""End-to-end load smoke: a ~200-request Poisson run against a live
server, with sheds, expiries, prefix-cache hits, and the byte-identity
acceptance check between the cached and uncached decode paths."""

import numpy as np
import pytest

from repro.load import (
    BurstyArrivals,
    PoissonArrivals,
    SharedPrefixChat,
    Workload,
    default_policy,
    format_report,
    run_load,
)
from repro.serve import InferenceEngine, PrefixKVCache


def _chat_workload(n, seed=0, rate=5000.0, **chat_kw):
    chat_kw.setdefault("n_prefixes", 3)
    chat_kw.setdefault("prefix_tokens", 32)
    chat_kw.setdefault("suffix_tokens", (2, 6))
    chat_kw.setdefault("max_new_tokens", (2, 6))
    return Workload(
        arrivals=PoissonArrivals(rate),
        traffic=SharedPrefixChat(**chat_kw),
        n_requests=n,
        seed=seed,
        vocab=512,
    )


class TestPoissonSmoke:
    def test_200_requests_all_accounted(self, tiny_model):
        """Every request resolves as completed/shed/expired — zero
        lost, zero unstructured errors — and shared prefixes hit."""
        engine = InferenceEngine(tiny_model, prefix_cache=PrefixKVCache())
        result = run_load(
            engine,
            _chat_workload(200, rate=2000.0),
            max_batch_tokens=256,
            poll_every_s=0.05,
        )
        summary = result.summary()
        assert summary["n_requests"] == 200
        assert summary["lost"] == 0
        assert summary["errors"] == 0
        assert (
            summary["completed"] + summary["shed"] + summary["expired"] == 200
        )
        # No admission bound and no deadlines: everything completes.
        assert summary["completed"] == 200
        assert summary["prefix_cache"]["hits"] > 0
        assert summary["tokens_per_s"] > 0
        # The server's own accounting agrees with the records.
        assert result.metrics["requests"]["completed"] == 200
        # TTFT/TBT/latency populated for completed requests.
        assert summary["ttft"]["count"] == 200
        assert summary["tbt"]["p50_s"] >= 0
        # The default SLO policy renders a report without blowing up.
        assert "load report" in format_report(
            summary, default_policy(ttft_p95_s=60).evaluate(summary)
        )

    def test_burst_against_tight_queue_sheds_structurally(self, tiny_model):
        """A burst into a tiny admission queue sheds requests as
        Overloaded — recorded as "shed", never a lost task."""
        engine = InferenceEngine(tiny_model)
        workload = Workload(
            arrivals=BurstyArrivals(50_000.0, burst_size=16),
            traffic=SharedPrefixChat(
                n_prefixes=2, prefix_tokens=24, suffix_tokens=(2, 4),
                max_new_tokens=(8, 16), tier="standard",
            ),
            n_requests=120,
            seed=1,
            vocab=512,
        )
        result = run_load(
            engine, workload, max_batch_tokens=64, max_waiting=4,
            poll_every_s=0.02,
        )
        summary = result.summary()
        assert summary["lost"] == 0
        assert summary["errors"] == 0
        assert summary["shed"] > 0
        assert summary["completed"] > 0
        assert summary["completed"] + summary["shed"] == 120
        assert 0 < summary["shed_rate"] < 1

    def test_tight_deadlines_expire_structurally(self, tiny_model):
        engine = InferenceEngine(tiny_model)
        workload = Workload(
            arrivals=PoissonArrivals(5000.0),
            traffic=SharedPrefixChat(
                n_prefixes=2, prefix_tokens=24, suffix_tokens=(2, 4),
                max_new_tokens=(32, 48), deadline_s=0.01,
            ),
            n_requests=30,
            seed=2,
            vocab=512,
        )
        result = run_load(engine, workload, max_batch_tokens=128)
        summary = result.summary()
        assert summary["lost"] == 0
        assert summary["errors"] == 0
        assert summary["expired"] > 0
        assert summary["expired"] + summary["completed"] == 30

    def test_snapshots_polled_mid_run(self, tiny_model):
        engine = InferenceEngine(tiny_model)
        result = run_load(
            engine,
            _chat_workload(80, rate=300.0, max_new_tokens=(8, 16)),
            max_batch_tokens=128,
            poll_every_s=0.02,
        )
        assert len(result.snapshots) >= 2
        for snap in result.snapshots:
            assert "t_s" in snap and "in_flight" in snap and "queues" in snap
        # Snapshots are monotone in submissions.
        submitted = [s["requests"]["submitted"] for s in result.snapshots]
        assert submitted == sorted(submitted)


class TestPrefixByteIdentity:
    def test_outputs_byte_identical_with_and_without_cache(self, tiny_config):
        """The acceptance criterion: shared-prefix traffic served
        through the prefix cache produces decode streams identical to
        the cache-disabled path, request for request."""
        from repro.models import CausalLM

        workload = _chat_workload(60, seed=5, rate=3000.0)
        with_cache = run_load(
            InferenceEngine(
                CausalLM(tiny_config, seed=0), prefix_cache=PrefixKVCache()
            ),
            workload,
            max_batch_tokens=256,
        )
        without_cache = run_load(
            InferenceEngine(CausalLM(tiny_config, seed=0)),
            workload,
            max_batch_tokens=256,
        )
        assert with_cache.completed == 60 and without_cache.completed == 60
        cached = {r.index: r.tokens for r in with_cache.records}
        plain = {r.index: r.tokens for r in without_cache.records}
        assert cached == plain
        stats = with_cache.prefix_stats
        assert stats["hits"] > 0
        assert without_cache.prefix_stats is None
