"""Arrival processes: reproducibility, shape, and spec round-trips."""

import numpy as np
import pytest

from repro.load import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    from_spec,
)

ALL = [
    PoissonArrivals(100.0),
    BurstyArrivals(100.0, burst_size=4, within_burst_s=0.001),
    DiurnalArrivals(100.0, period_s=5.0, depth=0.8),
]


@pytest.mark.parametrize("proc", ALL, ids=lambda p: p.kind)
class TestEveryProcess:
    def test_same_seed_same_offsets(self, proc):
        a = proc.offsets(500, seed=3)
        b = proc.offsets(500, seed=3)
        assert np.array_equal(a, b)

    def test_different_seed_different_offsets(self, proc):
        assert not np.array_equal(proc.offsets(100, 1), proc.offsets(100, 2))

    def test_ascending_and_positive(self, proc):
        offs = proc.offsets(500, seed=0)
        assert offs.shape == (500,)
        assert np.all(offs > 0)
        assert np.all(np.diff(offs) >= 0)

    def test_zero_requests(self, proc):
        assert proc.offsets(0, seed=0).size == 0

    def test_negative_n_rejected(self, proc):
        with pytest.raises(ValueError):
            proc.offsets(-1, seed=0)

    def test_spec_round_trip(self, proc):
        rebuilt = from_spec(proc.to_spec())
        assert type(rebuilt) is type(proc)
        assert np.array_equal(rebuilt.offsets(200, 5), proc.offsets(200, 5))


class TestRates:
    def test_poisson_mean_rate(self):
        offs = PoissonArrivals(50.0).offsets(5000, seed=0)
        rate = 5000 / offs[-1]
        assert rate == pytest.approx(50.0, rel=0.1)

    def test_bursty_long_run_rate_matches(self):
        offs = BurstyArrivals(50.0, burst_size=8).offsets(4000, seed=0)
        assert 4000 / offs[-1] == pytest.approx(50.0, rel=0.15)

    def test_bursty_is_actually_bursty(self):
        offs = BurstyArrivals(10.0, burst_size=8, within_burst_s=1e-4).offsets(
            800, seed=0
        )
        gaps = np.diff(offs)
        # Most gaps are the tiny within-burst spacing; the rest are the
        # long between-burst exponentials.
        tiny = np.sum(gaps < 1e-3)
        assert tiny >= 0.7 * gaps.size

    def test_diurnal_rate_modulates(self):
        proc = DiurnalArrivals(200.0, period_s=10.0, depth=0.9)
        offs = proc.offsets(4000, seed=1)
        # Count arrivals in the peak vs trough quarter of each period.
        phase = (offs % 10.0) / 10.0
        peak = np.sum((phase > 0.15) & (phase < 0.35))  # sin ≈ +1
        trough = np.sum((phase > 0.65) & (phase < 0.85))  # sin ≈ -1
        assert peak > 3 * trough

    def test_diurnal_depth_validated(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(10.0, depth=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(10.0, depth=-0.1)

    def test_invalid_rate_rejected(self):
        for cls in (PoissonArrivals, BurstyArrivals, DiurnalArrivals):
            with pytest.raises(ValueError):
                cls(0.0)

    def test_unknown_spec_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            from_spec({"kind": "fractal"})
