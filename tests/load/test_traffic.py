"""Traffic models and workload traces: shapes, seeds, digests."""

import numpy as np
import pytest

from repro.load import (
    LongDocSummarization,
    MixedTraffic,
    PoissonArrivals,
    SharedPrefixChat,
    Workload,
)


def _chat(**kw):
    return SharedPrefixChat(
        n_prefixes=3, prefix_tokens=32, suffix_tokens=(2, 6), **kw
    )


class TestSharedPrefixChat:
    def test_prompts_share_prefixes(self):
        specs = _chat().make(50, seed=0, vocab=512)
        prefixes = {s.prompt[:32].tobytes() for s in specs}
        assert len(prefixes) <= 3
        # With 50 draws over 3 prefixes, each recurs.
        assert len(prefixes) == 3

    def test_suffixes_vary(self):
        specs = _chat().make(20, seed=0, vocab=512)
        assert len({s.prompt.tobytes() for s in specs}) > 10

    def test_tier_and_lengths(self):
        specs = _chat().make(20, seed=1, vocab=512)
        for s in specs:
            assert s.tier == "interactive"
            assert 34 <= s.prompt_len <= 38
            assert s.max_new_tokens >= 1

    def test_seeded_reproducibility(self):
        a = _chat().make(30, seed=9, vocab=512)
        b = _chat().make(30, seed=9, vocab=512)
        assert all(
            np.array_equal(x.prompt, y.prompt)
            and x.max_new_tokens == y.max_new_tokens
            for x, y in zip(a, b)
        )

    def test_vocab_respected(self):
        specs = _chat().make(30, seed=0, vocab=17)
        for s in specs:
            assert s.prompt.max() < 17 and s.prompt.min() >= 0


class TestLongDocSummarization:
    def test_shapes_and_tier(self):
        specs = LongDocSummarization(doc_tokens=(40, 60)).make(
            20, seed=0, vocab=512
        )
        for s in specs:
            assert 40 <= s.prompt_len <= 60
            assert s.tier == "batch"

    def test_docs_unique(self):
        specs = LongDocSummarization().make(20, seed=0, vocab=512)
        assert len({s.prompt.tobytes() for s in specs}) == 20


class TestMixedTraffic:
    def test_mixture_contains_both(self):
        mix = MixedTraffic(
            [(0.5, _chat()), (0.5, LongDocSummarization(doc_tokens=(60, 80)))]
        )
        specs = mix.make(60, seed=0, vocab=512)
        tiers = {s.tier for s in specs}
        assert tiers == {"interactive", "batch"}

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            MixedTraffic([])
        with pytest.raises(ValueError):
            MixedTraffic([(0.0, _chat())])

    def test_reproducible(self):
        mix = MixedTraffic([(0.7, _chat()), (0.3, LongDocSummarization())])
        a = mix.make(40, seed=4, vocab=256)
        b = mix.make(40, seed=4, vocab=256)
        assert all(np.array_equal(x.prompt, y.prompt) for x, y in zip(a, b))


class TestWorkload:
    def _workload(self, seed=0, time_scale=1.0):
        return Workload(
            arrivals=PoissonArrivals(100.0),
            traffic=_chat(),
            n_requests=50,
            seed=seed,
            vocab=512,
            time_scale=time_scale,
        )

    def test_build_merges_arrivals(self):
        trace = self._workload().build()
        assert len(trace) == 50
        arrivals = [s.arrival_s for s in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_build_is_cached(self):
        wl = self._workload()
        assert wl.build() is wl.build()

    def test_digest_reproducible_across_instances(self):
        assert self._workload().digest() == self._workload().digest()

    def test_digest_sensitive_to_seed_and_scale(self):
        base = self._workload().digest()
        assert self._workload(seed=1).digest() != base
        assert self._workload(time_scale=0.5).digest() != base

    def test_time_scale_compresses(self):
        slow = self._workload().build()
        fast = self._workload(time_scale=0.1).build()
        assert fast[-1].arrival_s == pytest.approx(0.1 * slow[-1].arrival_s)

    def test_describe_shape(self):
        d = self._workload().describe()
        assert d["arrivals"]["kind"] == "poisson"
        assert d["n_requests"] == 50
        assert d["tiers"] == {"interactive": 50}
        assert len(d["digest"]) == 64
