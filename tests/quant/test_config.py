"""Tests for the top-level quantize_tensor dispatch."""

import numpy as np
import pytest

from repro.dtypes.registry import get_dtype, list_dtypes
from repro.quant.config import QuantConfig, quantize_tensor
from repro.quant.errors import mse, nmse


class TestDispatch:
    @pytest.mark.parametrize(
        "dtype",
        [
            "int4_sym", "int4_asym", "fp4", "fp3", "flint4", "ant4",
            "bitmod_fp4", "bitmod_fp3", "olive4", "mx_fp4", "int6_sym",
        ],
    )
    def test_every_dtype_quantizes(self, weights, dtype):
        r = quantize_tensor(weights, QuantConfig(dtype=dtype))
        assert r.w_deq.shape == weights.shape
        assert np.isfinite(r.w_deq).all()
        assert r.mse < np.mean(weights**2)  # better than zeroing

    def test_dtype_instance_accepted(self, weights):
        dt = get_dtype("fp4")
        r = quantize_tensor(weights, QuantConfig(dtype=dt))
        assert r.dtype is dt

    @pytest.mark.parametrize("gran", ["tensor", "channel", "group"])
    def test_granularities(self, weights, gran):
        r = quantize_tensor(weights, QuantConfig(dtype="int4_sym", granularity=gran))
        assert r.layout.granularity == gran

    def test_finer_granularity_lower_error(self, heavy_weights):
        errs = {}
        for gran in ("tensor", "channel", "group"):
            cfg = QuantConfig(dtype="int4_sym", granularity=gran, group_size=32)
            errs[gran] = quantize_tensor(heavy_weights, cfg).mse
        assert errs["group"] < errs["channel"] < errs["tensor"]

    def test_mx_overrides_group_size(self, weights):
        r = quantize_tensor(weights, QuantConfig(dtype="mx_fp4", group_size=128))
        assert r.layout.group_size == 32

    def test_scale_bits_none_keeps_fp_scales(self, weights):
        hi = quantize_tensor(weights, QuantConfig(dtype="fp4", scale_bits=None))
        lo = quantize_tensor(weights, QuantConfig(dtype="fp4", scale_bits=2))
        assert lo.mse > hi.mse

    def test_int8_scale_bits_near_lossless(self, weights):
        fp = quantize_tensor(weights, QuantConfig(dtype="fp4", scale_bits=None))
        i8 = quantize_tensor(weights, QuantConfig(dtype="fp4", scale_bits=8))
        assert i8.mse == pytest.approx(fp.mse, rel=0.02)

    def test_bitmod_records_special_values(self, weights):
        r = quantize_tensor(weights, QuantConfig(dtype="bitmod_fp3"))
        assert r.special_values is not None
        assert set(np.unique(r.special_values)) <= {-6.0, -3.0, 3.0, 6.0}

    def test_memory_bits(self, weights):
        r = quantize_tensor(weights, QuantConfig(dtype="bitmod_fp4"))
        assert r.bits_per_weight == pytest.approx(4 + 10 / 128)
        assert r.memory_bits == pytest.approx(weights.size * (4 + 10 / 128))

    def test_clip_ratio_flows_through(self, heavy_weights):
        full = quantize_tensor(heavy_weights, QuantConfig(dtype="int3_asym"))
        clip = quantize_tensor(
            heavy_weights, QuantConfig(dtype="int3_asym", clip_ratio=0.8)
        )
        assert clip.mse != pytest.approx(full.mse)

    def test_with_helper(self):
        cfg = QuantConfig(dtype="fp4")
        cfg2 = cfg.with_(clip_ratio=0.9)
        assert cfg.clip_ratio == 1.0 and cfg2.clip_ratio == 0.9
        assert cfg2.dtype == "fp4"


class TestValidation:
    """QuantConfig.__post_init__ rejects malformed configurations."""

    def test_unknown_granularity(self):
        with pytest.raises(ValueError, match="granularity must be one of"):
            QuantConfig(granularity="per-channel")

    def test_valid_granularities_accepted(self):
        for g in ("tensor", "channel", "group"):
            assert QuantConfig(granularity=g).granularity == g

    def test_group_size_must_be_positive_int(self):
        with pytest.raises(ValueError, match="group_size must be a positive"):
            QuantConfig(group_size=0)
        with pytest.raises(ValueError, match="group_size must be a positive"):
            QuantConfig(group_size=-128)
        with pytest.raises(ValueError, match="group_size must be a positive"):
            QuantConfig(group_size=128.0)

    def test_clip_ratio_bounds(self):
        with pytest.raises(ValueError, match=r"clip_ratio must lie in \(0, 1\]"):
            QuantConfig(clip_ratio=0.0)
        with pytest.raises(ValueError, match=r"clip_ratio must lie in \(0, 1\]"):
            QuantConfig(clip_ratio=1.2)
        assert QuantConfig(clip_ratio=0.7).clip_ratio == 0.7

    def test_with_helper_revalidates(self):
        with pytest.raises(ValueError, match="granularity"):
            QuantConfig().with_(granularity="rows")


class TestErrorMetrics:
    def test_mse_zero_for_identical(self, weights):
        assert mse(weights, weights) == 0.0

    def test_nmse_scale_invariant(self, weights, rng):
        noisy = weights + 0.01 * rng.standard_normal(weights.shape)
        assert nmse(weights, noisy) == pytest.approx(
            nmse(weights * 7, noisy * 7)
        )

    def test_bitmod_beats_int_asym_on_heavy_tails(self, heavy_weights):
        bm = quantize_tensor(heavy_weights, QuantConfig(dtype="bitmod_fp3")).mse
        ia = quantize_tensor(heavy_weights, QuantConfig(dtype="int3_asym")).mse
        assert bm < ia
