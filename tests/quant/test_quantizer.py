"""Tests for the grid row quantizer."""

import numpy as np
import pytest

from repro.dtypes.registry import get_dtype
from repro.quant.quantizer import clipped_absmax_scales, quantize_rows_grid


class TestScales:
    def test_absmax_scaling(self, rng):
        rows = rng.standard_normal((8, 64))
        scales = clipped_absmax_scales(rows, grid_absmax=4.0)
        np.testing.assert_allclose(
            scales[:, 0], np.max(np.abs(rows), axis=1) / 4.0
        )

    def test_clip_ratio_shrinks_scales(self, rng):
        rows = rng.standard_normal((8, 64))
        full = clipped_absmax_scales(rows, 4.0, 1.0)
        clipped = clipped_absmax_scales(rows, 4.0, 0.8)
        np.testing.assert_allclose(clipped, 0.8 * full)

    def test_zero_rows_get_unit_scale(self):
        scales = clipped_absmax_scales(np.zeros((3, 8)), 4.0)
        assert np.all(scales == 1.0)


class TestGridQuantization:
    def test_max_maps_to_grid_max(self, rng):
        dt = get_dtype("fp4")
        rows = rng.standard_normal((8, 64))
        rq = quantize_rows_grid(rows, dt)
        idx = np.argmax(np.abs(rows), axis=1)
        snapped = rq.w_deq[np.arange(8), idx] / rq.scales[:, 0]
        np.testing.assert_allclose(np.abs(snapped), dt.absmax)

    def test_all_outputs_on_grid(self, rng):
        dt = get_dtype("fp3")
        rows = rng.standard_normal((4, 32))
        rq = quantize_rows_grid(rows, dt)
        codes = rq.w_deq / rq.scales
        for c in np.unique(np.round(codes, 10)):
            assert any(abs(c - g) < 1e-9 for g in dt.grid)

    def test_sq_error_matches_recomputation(self, rng):
        dt = get_dtype("fp4")
        rows = rng.standard_normal((4, 32))
        rq = quantize_rows_grid(rows, dt)
        np.testing.assert_allclose(
            rq.sq_error, np.sum((rq.w_deq - rows) ** 2, axis=1)
        )

    def test_denser_grid_has_lower_error(self, rng):
        rows = rng.standard_normal((16, 128))
        e3 = quantize_rows_grid(rows, get_dtype("fp3")).sq_error.sum()
        e4 = quantize_rows_grid(rows, get_dtype("fp4")).sq_error.sum()
        e6 = quantize_rows_grid(rows, get_dtype("fp6_e2m3")).sq_error.sum()
        assert e6 < e4 < e3

    def test_moderate_clipping_can_help_heavy_tails(self, heavy_weights):
        dt = get_dtype("fp3")
        full = quantize_rows_grid(heavy_weights, dt).sq_error.sum()
        best_clipped = min(
            quantize_rows_grid(heavy_weights, dt, clip_ratio=r).sq_error.sum()
            for r in (0.9, 0.8, 0.7)
        )
        assert best_clipped < full
