"""Edge-case and robustness tests across the quantization stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.registry import get_dtype, list_dtypes
from repro.quant.config import QuantConfig, quantize_tensor

_ALL_QUANTIZABLE = [
    "int4_sym", "int4_asym", "fp4", "fp3", "bitmod_fp4", "bitmod_fp3",
    "ant4", "ant3", "ant_adaptive4", "olive4", "olive3", "mx_fp4", "mx_fp3",
    "flint4", "int6_sym", "int8_sym", "int3_asym",
]


class TestDegenerateTensors:
    @pytest.mark.parametrize("dtype", _ALL_QUANTIZABLE)
    def test_all_zero_tensor(self, dtype):
        w = np.zeros((4, 128))
        r = quantize_tensor(w, QuantConfig(dtype=dtype))
        np.testing.assert_array_equal(r.w_deq, 0.0)

    @pytest.mark.parametrize("dtype", _ALL_QUANTIZABLE)
    def test_constant_tensor(self, dtype):
        w = np.full((4, 128), 0.37)
        r = quantize_tensor(w, QuantConfig(dtype=dtype))
        assert np.isfinite(r.w_deq).all()
        # The constant must be representable within one step.
        assert np.max(np.abs(r.w_deq - w)) <= 0.37

    @pytest.mark.parametrize("dtype", ["int4_sym", "bitmod_fp4", "mx_fp4"])
    def test_huge_magnitudes(self, dtype):
        w = np.full((2, 128), 1e30)
        w[0, 0] = -1e30
        r = quantize_tensor(w, QuantConfig(dtype=dtype))
        assert np.isfinite(r.w_deq).all()

    @pytest.mark.parametrize("dtype", ["int4_sym", "bitmod_fp4", "mx_fp4"])
    def test_tiny_magnitudes(self, dtype):
        w = np.full((2, 128), 1e-30)
        r = quantize_tensor(w, QuantConfig(dtype=dtype))
        assert np.isfinite(r.w_deq).all()

    def test_single_column_tensor(self):
        w = np.ones((4, 1))
        r = quantize_tensor(w, QuantConfig(dtype="int4_sym", group_size=128))
        np.testing.assert_allclose(r.w_deq, w)

    def test_non_multiple_channel_size(self, rng):
        w = rng.standard_normal((4, 200))  # pads to 256
        r = quantize_tensor(w, QuantConfig(dtype="bitmod_fp4", group_size=128))
        assert r.w_deq.shape == (4, 200)

    def test_single_element_groups_rejected_gracefully(self, rng):
        w = rng.standard_normal((2, 8))
        r = quantize_tensor(w, QuantConfig(dtype="int4_sym", group_size=4))
        assert r.w_deq.shape == w.shape


class TestPropertyBased:
    @given(
        dtype=st.sampled_from(["int4_sym", "int4_asym", "fp4", "bitmod_fp4"]),
        seed=st.integers(0, 2**16),
        scale=st.floats(1e-3, 1e3),
    )
    @settings(max_examples=40, deadline=None)
    def test_error_bounded_by_row_range(self, dtype, seed, scale):
        """Quantization error never exceeds the row's value range."""
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((2, 128)) * scale
        r = quantize_tensor(w, QuantConfig(dtype=dtype))
        span = w.max() - w.min()
        assert np.max(np.abs(r.w_deq - w)) <= span

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_scaling_equivariance(self, seed):
        """Quantizing c*W gives c * (quantized W) for scale-only dtypes."""
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((2, 128))
        cfg = QuantConfig(dtype="fp4", scale_bits=None)
        a = quantize_tensor(w, cfg).w_deq
        b = quantize_tensor(w * 8.0, cfg).w_deq
        np.testing.assert_allclose(b, a * 8.0, rtol=1e-10)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_sign_flip_equivariance_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((2, 128))
        cfg = QuantConfig(dtype="int4_sym", scale_bits=None)
        a = quantize_tensor(w, cfg).w_deq
        b = quantize_tensor(-w, cfg).w_deq
        np.testing.assert_allclose(b, -a)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_bitmod_at_least_as_good_as_basic_fp(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((4, 128))
        bm = quantize_tensor(w, QuantConfig(dtype="bitmod_fp3", scale_bits=None))
        fp = quantize_tensor(w, QuantConfig(dtype="fp3", scale_bits=None))
        assert bm.mse <= fp.mse + 1e-15


class TestEveryRegisteredDtype:
    @pytest.mark.parametrize("name", list_dtypes())
    def test_quantize_smoke(self, name, rng):
        w = rng.standard_normal((2, 128))
        r = quantize_tensor(w, QuantConfig(dtype=name))
        assert np.isfinite(r.w_deq).all()
        assert r.mse >= 0.0
