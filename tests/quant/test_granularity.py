"""Tests for granularity reshaping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.granularity import from_rows, rows_per_channel, to_rows


class TestToRows:
    def test_tensor_granularity(self, weights):
        rows, layout = to_rows(weights, "tensor")
        assert rows.shape == (1, weights.size)
        assert layout.n_rows == 1

    def test_channel_granularity(self, weights):
        rows, layout = to_rows(weights, "channel")
        assert rows.shape == (weights.shape[0], weights.shape[1])

    def test_group_granularity(self, weights):
        rows, layout = to_rows(weights, "group", 128)
        k, d = weights.shape
        assert rows.shape == (k * d // 128, 128)

    def test_rows_preserve_values(self, weights):
        rows, _ = to_rows(weights, "group", 64)
        assert rows.sum() == pytest.approx(weights.sum())

    @given(
        k=st.integers(1, 8),
        d=st.integers(1, 300),
        g=st.sampled_from([16, 32, 128]),
        gran=st.sampled_from(["tensor", "channel", "group"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, k, d, g, gran):
        rng = np.random.default_rng(k * 1000 + d)
        w = rng.standard_normal((k, d))
        rows, layout = to_rows(w, gran, g)
        np.testing.assert_array_equal(from_rows(rows, layout), w)

    def test_padding_with_non_multiple_channel(self):
        w = np.ones((2, 100))
        rows, layout = to_rows(w, "group", 64)
        assert rows.shape == (4, 64)
        assert layout.pad == 28
        np.testing.assert_array_equal(from_rows(rows, layout), w)

    def test_rows_per_channel(self):
        w = np.ones((4, 256))
        _, layout = to_rows(w, "group", 128)
        assert rows_per_channel(layout) == 2
        _, layout = to_rows(w, "channel")
        assert rows_per_channel(layout) == 1

    def test_bad_granularity(self, weights):
        with pytest.raises(ValueError, match="granularity"):
            to_rows(weights, "block")

    def test_bad_group_size(self, weights):
        with pytest.raises(ValueError):
            to_rows(weights, "group", 0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            to_rows(np.zeros(8), "group")
