"""Tests for Algorithm 1 (fine-grained datatype adaptation)."""

import numpy as np
import pytest

from repro.dtypes.extended import BitMoDType
from repro.dtypes.flint import AntAdaptiveType
from repro.dtypes.registry import get_dtype
from repro.quant.adaptive import (
    adaptive_quantize_rows,
    quantize_rows_ant,
    quantize_rows_bitmod,
)
from repro.quant.quantizer import quantize_rows_grid


class TestAdaptiveSelection:
    def test_never_worse_than_any_candidate(self, rng):
        bm = BitMoDType(bits=3)
        rows = rng.standard_normal((64, 128))
        best = adaptive_quantize_rows(rows, bm.candidates)
        for cand in bm.candidates:
            single = quantize_rows_grid(rows, cand)
            assert np.all(best.sq_error <= single.sq_error + 1e-12)

    def test_candidate_idx_identifies_winner(self, rng):
        bm = BitMoDType(bits=4)
        rows = rng.standard_normal((32, 128))
        best = adaptive_quantize_rows(rows, bm.candidates)
        for g in range(32):
            cand = bm.candidates[best.candidate_idx[g]]
            single = quantize_rows_grid(rows[g: g + 1], cand)
            assert best.sq_error[g] == pytest.approx(single.sq_error[0])

    def test_positive_shifted_group_picks_positive_sv(self, rng):
        """A solely-positive-outlier group should choose +6 (EA logic)."""
        bm = BitMoDType(bits=3)
        rows = rng.standard_normal((1, 128)) * 0.5
        rows[0, :4] = [6.0, 5.5, 4.0, 3.8]  # positive-heavy extremes
        rq = quantize_rows_bitmod(rows, bm)
        assert rq.special_values[0] == 6.0

    def test_negative_shifted_group_picks_negative_sv(self, rng):
        bm = BitMoDType(bits=3)
        rows = rng.standard_normal((1, 128)) * 0.5
        rows[0, :4] = [-6.0, -5.5, -4.0, -3.8]
        rq = quantize_rows_bitmod(rows, bm)
        assert rq.special_values[0] == -6.0

    def test_special_values_come_from_family(self, rng):
        bm = BitMoDType(bits=4)
        rows = rng.standard_normal((64, 128))
        rq = quantize_rows_bitmod(rows, bm)
        assert set(np.unique(rq.special_values)) <= set(bm.special_values)

    def test_bitmod_beats_basic_fp(self, rng):
        """Repurposing the redundant zero must never hurt."""
        rows = rng.standard_normal((128, 128))
        for bits in (3, 4):
            bm = quantize_rows_bitmod(rows, BitMoDType(bits=bits))
            basic = quantize_rows_grid(rows, get_dtype(f"fp{bits}"))
            assert bm.sq_error.sum() < basic.sq_error.sum()

    def test_ant_adaptive(self, rng):
        ant = AntAdaptiveType(bits=4)
        rows = rng.standard_normal((32, 128))
        rq = quantize_rows_ant(rows, ant)
        assert rq.candidate_idx is not None
        assert rq.sq_error.shape == (32,)

    def test_sequential_reference_equivalence(self, rng):
        """The stacked search must reproduce the sequential strict-<
        update rule bit for bit."""
        bm = BitMoDType(bits=4)
        rows = rng.standard_normal((64, 128))
        rows[0] = 0.0  # all-zero row: scale guard path
        best = adaptive_quantize_rows(rows, bm.candidates)

        ref = quantize_rows_grid(rows, bm.candidates[0])
        ref_idx = np.zeros(rows.shape[0], dtype=np.int64)
        for idx, cand in enumerate(bm.candidates[1:], start=1):
            trial = quantize_rows_grid(rows, cand)
            improved = trial.sq_error < ref.sq_error
            ref.w_deq[improved] = trial.w_deq[improved]
            ref.scales[improved] = trial.scales[improved]
            ref.sq_error[improved] = trial.sq_error[improved]
            ref_idx[improved] = idx
        np.testing.assert_array_equal(best.w_deq, ref.w_deq)
        np.testing.assert_array_equal(best.scales, ref.scales)
        np.testing.assert_array_equal(best.sq_error, ref.sq_error)
        np.testing.assert_array_equal(best.candidate_idx, ref_idx)

    def test_custom_grid_extended_float_uses_its_grid(self, rng):
        """A hand-built ExtendedFloat whose values are NOT basic + SV
        must be honored (no shared-basic-snap shortcut)."""
        from repro.dtypes.extended import ExtendedFloat

        custom = ExtendedFloat(
            name="custom", bits=4,
            values=np.array([-4.0, -1.0, 0.0, 1.0, 4.0, 5.0]),
            special_value=5.0, base_bits=4,
        )
        rows = rng.standard_normal((16, 128)) * 3
        best = adaptive_quantize_rows(rows, [custom])
        ref = quantize_rows_grid(rows, custom)
        np.testing.assert_array_equal(best.w_deq, ref.w_deq)

    def test_empty_candidates_rejected(self, rng):
        with pytest.raises(ValueError):
            adaptive_quantize_rows(rng.standard_normal((2, 8)), [])


class TestPaperCrossover:
    """Table VIII's ER/EA crossover, reproduced at the MSE level."""

    def test_er_wins_at_4bit_on_gaussian(self, rng):
        rows = rng.standard_normal((256, 128))
        er = quantize_rows_bitmod(rows, BitMoDType(4, (-5.0, 5.0)))
        ea = quantize_rows_bitmod(rows, BitMoDType(4, (-8.0, 8.0)))
        assert er.sq_error.sum() < ea.sq_error.sum()

    def test_ea_wins_at_3bit_on_shifted_groups(self, rng):
        rows = rng.standard_normal((256, 128))
        rows += rng.normal(0, 0.4, size=(256, 1))  # per-group shifts
        er = quantize_rows_bitmod(rows, BitMoDType(3, (-3.0, 3.0)))
        ea = quantize_rows_bitmod(rows, BitMoDType(3, (-6.0, 6.0)))
        assert ea.sq_error.sum() < er.sq_error.sum()
