"""Tests for weight packing and KV-cache quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.config import QuantConfig, quantize_tensor
from repro.quant.kv import KVQuantConfig, quantize_kv
from repro.quant.packing import (
    WORD_BITS,
    pack_bits,
    pack_tensor,
    pack_words,
    unpack_bits,
    unpack_tensor,
    unpack_words,
)


class TestWordPacking:
    @given(
        bits=st.integers(1, 12),
        seed=st.integers(0, 2**16),
        count=st.integers(1, 500),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, bits, seed, count):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 2**bits, size=count).astype(np.uint64)
        words = pack_words(codes, bits)
        cpw = WORD_BITS // bits
        assert words.dtype == np.uint64
        assert words.size == (count + cpw - 1) // cpw
        np.testing.assert_array_equal(unpack_words(words, bits, count), codes)

    def test_codes_never_straddle_words(self):
        """Code i of a word sits at bit offset i*bits: 16 whole 4-bit
        codes per 64-bit word, high bits zero when underfull."""
        codes = np.arange(16, dtype=np.uint64)
        words = pack_words(codes, 4)
        assert words.size == 1
        expected = sum(int(c) << (4 * i) for i, c in enumerate(codes))
        assert int(words[0]) == expected
        # 17th code starts a fresh word at offset 0.
        words2 = pack_words(np.arange(17, dtype=np.uint64) % 16, 4)
        assert int(words2[1]) == 0  # code value 16 % 16 == 0

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_words(np.array([16]), 4)
        with pytest.raises(ValueError):
            pack_words(np.array([1]), 0)

    def test_unpack_count_validated(self):
        words = pack_words(np.arange(8, dtype=np.uint64), 4)
        with pytest.raises(ValueError, match="cannot unpack"):
            unpack_words(words, 4, 17)

    def test_word_image_matches_bit_stream(self, rng):
        """The lazy word image decodes to the same codes as the
        bit-packed DRAM stream, and is built exactly once."""
        cfg = QuantConfig(dtype="bitmod_fp4", group_size=32)
        packed = pack_tensor(rng.standard_normal((3, 64)), cfg)
        img = packed.word_image()
        assert packed.word_image() is img  # cached
        from_words = unpack_words(img, packed.bits, packed.n_codes)
        from_bits = unpack_bits(packed.element_data, packed.bits, packed.n_codes)
        np.testing.assert_array_equal(from_words, from_bits)


class TestBitPacking:
    @given(
        bits=st.integers(1, 12),
        seed=st.integers(0, 2**16),
        count=st.integers(1, 500),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, bits, seed, count):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 2**bits, size=count).astype(np.uint64)
        data = pack_bits(codes, bits)
        assert len(data) == (count * bits + 7) // 8
        np.testing.assert_array_equal(unpack_bits(data, bits, count), codes)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([16]), 4)

    def test_density(self):
        """3-bit codes pack at exactly 3 bits each."""
        codes = np.arange(8, dtype=np.uint64).repeat(100)
        assert len(pack_bits(codes, 3)) == (800 * 3 + 7) // 8


class TestTensorPacking:
    @pytest.mark.parametrize(
        "dtype",
        ["int4_sym", "int4_asym", "int6_sym", "fp4", "fp3",
         "bitmod_fp4", "bitmod_fp3", "flint4", "ant3"],
    )
    def test_roundtrip_matches_quantize(self, dtype, rng):
        w = rng.standard_normal((8, 256))
        cfg = QuantConfig(dtype=dtype)
        packed = pack_tensor(w, cfg)
        recon = unpack_tensor(packed, cfg)
        ref = quantize_tensor(w, cfg).w_deq
        np.testing.assert_allclose(recon, ref, atol=1e-12)

    def test_memory_overhead_close_to_model(self, rng):
        """Packed size tracks the datatype's memory model (paper's
        '10 extra bits per group' claim)."""
        w = rng.standard_normal((16, 1024))
        cfg = QuantConfig(dtype="bitmod_fp3")
        packed = pack_tensor(w, cfg)
        # element bits + SF byte + 2-bit selector; second-level factors
        # amortize over channels.
        assert packed.bits_per_weight == pytest.approx(3 + 10 / 128, abs=0.05)

    def test_bitmod_stores_selectors(self, rng):
        w = rng.standard_normal((4, 256))
        packed = pack_tensor(w, QuantConfig(dtype="bitmod_fp4"))
        assert packed.sv_selectors is not None
        assert packed.sv_selectors.max() <= 3

    def test_asym_stores_zeros(self, rng):
        w = rng.standard_normal((4, 256))
        packed = pack_tensor(w, QuantConfig(dtype="int4_asym"))
        assert packed.zeros is not None

    def test_unsupported_dtype(self, rng):
        w = rng.standard_normal((4, 64))
        with pytest.raises(TypeError):
            pack_tensor(w, QuantConfig(dtype="olive4"))

    def test_padding_roundtrip(self, rng):
        w = rng.standard_normal((4, 200))
        cfg = QuantConfig(dtype="fp4")
        recon = unpack_tensor(pack_tensor(w, cfg), cfg)
        np.testing.assert_allclose(recon, quantize_tensor(w, cfg).w_deq, atol=1e-12)


class TestKVQuant:
    def test_int8_small_error(self, rng):
        kv = rng.standard_normal((1, 4, 16, 32))
        deq = quantize_kv(kv, KVQuantConfig(bits=8))
        assert np.max(np.abs(deq - kv)) < 0.05 * np.max(np.abs(kv))

    def test_error_grows_at_4bit(self, rng):
        kv = rng.standard_normal((1, 4, 16, 32))
        e8 = np.mean((quantize_kv(kv, KVQuantConfig(bits=8)) - kv) ** 2)
        e4 = np.mean((quantize_kv(kv, KVQuantConfig(bits=4)) - kv) ** 2)
        assert e4 > 10 * e8

    def test_per_head_beats_per_tensor_on_skewed_heads(self, rng):
        kv = rng.standard_normal((1, 4, 16, 32))
        kv[:, 0] *= 10.0  # one loud head
        ph = quantize_kv(kv, KVQuantConfig(bits=4, per_head=True))
        pt = quantize_kv(kv, KVQuantConfig(bits=4, per_head=False))
        assert np.mean((ph - kv) ** 2) < np.mean((pt - kv) ** 2)

    def test_constant_tensor(self):
        kv = np.full((1, 2, 4, 8), 3.0)
        np.testing.assert_allclose(quantize_kv(kv), kv)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            quantize_kv(rng.standard_normal((4, 16)))
