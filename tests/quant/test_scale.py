"""Tests for second-level scaling-factor quantization (VS-Quant)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.scale import quantize_scales


class TestScaleQuant:
    def test_int8_error_within_half_step(self, rng):
        scales = rng.uniform(0.01, 1.0, size=(64, 1))
        sq = quantize_scales(scales, bits=8, rows_per_channel=8)
        half_step = np.repeat(sq.channel_scales / 2.0, 8).reshape(64, 1)
        assert np.all(np.abs(sq.scales - scales) <= half_step + 1e-15)

    def test_error_monotone_in_bits(self, rng):
        scales = rng.uniform(0.01, 1.0, size=(64, 1))
        errs = []
        for bits in (2, 4, 6, 8):
            sq = quantize_scales(scales, bits=bits, rows_per_channel=8)
            errs.append(float(np.mean((sq.scales - scales) ** 2)))
        assert errs == sorted(errs, reverse=True)

    def test_codes_in_range(self, rng):
        scales = rng.uniform(0.0, 5.0, size=(32, 1))
        sq = quantize_scales(scales, bits=4, rows_per_channel=4)
        assert sq.codes.min() >= 0 and sq.codes.max() <= 15

    def test_channel_max_is_exact(self, rng):
        scales = rng.uniform(0.01, 1.0, size=(16, 1))
        sq = quantize_scales(scales, bits=8, rows_per_channel=4)
        per_chan = scales.reshape(-1, 4)
        recon = sq.scales.reshape(-1, 4)
        np.testing.assert_allclose(
            recon.max(axis=1), per_chan.max(axis=1), rtol=1e-12
        )

    def test_positive_scales_never_collapse_to_zero(self):
        # A tiny scale in a channel with a large one must stay nonzero.
        scales = np.array([[1.0], [1e-6]])
        sq = quantize_scales(scales, bits=8, rows_per_channel=2)
        assert sq.scales[1, 0] > 0.0

    @given(bits=st.integers(2, 10), rpc=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=30, deadline=None)
    def test_shape_preserved(self, bits, rpc):
        rng = np.random.default_rng(bits)
        scales = rng.uniform(0.1, 2.0, size=(16, 1))
        sq = quantize_scales(scales, bits=bits, rows_per_channel=rpc)
        assert sq.scales.shape == scales.shape
        assert sq.bits == bits

    def test_mismatched_channel_grouping_rejected(self, rng):
        with pytest.raises(ValueError):
            quantize_scales(rng.uniform(size=(10, 1)), rows_per_channel=3)

    def test_zero_bits_rejected(self, rng):
        with pytest.raises(ValueError):
            quantize_scales(rng.uniform(size=(4, 1)), bits=0)
