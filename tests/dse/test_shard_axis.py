"""The multi-chip (shards x topology) axis of the design space."""

import pytest

from repro.dse.space import (
    DatatypeChoice,
    DesignPoint,
    DesignSpace,
    get_preset,
)
from repro.dse.sweep import point_key, run_sweep
from repro.hw.baselines import make_accelerator
from repro.pipeline import Engine
from repro.pipeline.store import CacheStore


def _space(**kw):
    base = dict(
        name="t-shard",
        datatypes=(DatatypeChoice(4, "bitmod_fp4"),),
        models=("llama-2-7b",),
        tasks=("generative",),
        quick=True,
    )
    base.update(kw)
    return DesignSpace(**base)


@pytest.fixture
def engine(tmp_path):
    return Engine(store=CacheStore(tmp_path))


class TestSpaceAxis:
    def test_single_chip_collapses_topology(self):
        space = _space(shards=(1, 4), topologies=("ring", "fully_connected"))
        assert space.mesh_combos() == [
            (1, "ring"),
            (4, "ring"),
            (4, "fully_connected"),
        ]
        assert space.n_candidates() == 3

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            _space(shards=(0,))
        with pytest.raises(ValueError, match="unknown topology"):
            _space(topologies=("torus",))
        with pytest.raises(ValueError, match="no topologies"):
            _space(topologies=())

    def test_indivisible_model_skipped_with_reason(self):
        # llama-3-8b has 8 KV heads: 16 shards cannot divide them.
        space = _space(models=("llama-3-8b",), shards=(1, 16))
        points, skipped = space.points()
        assert all(p.shards == 1 for p in points)
        assert any("KV heads" in reason for _params, reason in skipped)
        assert any(params.get("shards") == 16 for params, _ in skipped)

    def test_dict_round_trip(self):
        space = _space(shards=(1, 2, 8), topologies=("fully_connected",))
        assert DesignSpace.from_dict(space.to_dict()) == space

    def test_sharding_preset_expands(self):
        space = get_preset("sharding")
        points, skipped = space.points()
        assert not skipped
        # 2 datatypes x (1 + 3 multi-shard x 2 topologies) = 14.
        assert len(points) == space.n_candidates() == 14
        meshes = {(p.shards, p.topology) for p in points}
        assert (1, "ring") in meshes and (8, "fully_connected") in meshes


class TestSweepRecords:
    def test_point_key_sensitive_to_mesh(self):
        arch = make_accelerator("bitmod").arch
        common = dict(
            space="t", arch=arch, model="llama-2-7b", task="generative",
            weight_bits=4,
        )
        single = DesignPoint(**common)
        assert point_key(single) != point_key(DesignPoint(shards=2, **common))
        assert point_key(DesignPoint(shards=2, **common)) != point_key(
            DesignPoint(shards=2, topology="fully_connected", **common)
        )

    def test_records_carry_interconnect_fields(self, engine):
        space = _space(shards=(1, 2), topologies=("ring",))
        res = run_sweep(space, engine=engine)
        by_shards = {r["shards"]: r for r in res.records}
        assert set(by_shards) == {1, 2}
        single, dual = by_shards[1], by_shards[2]
        assert single["topology"] is None
        assert single["interconnect_bytes"] == 0.0
        assert dual["topology"] == "ring"
        assert dual["interconnect_bytes"] > 0
        assert dual["interconnect_time_ms"] > 0
        # Two chips pay double the silicon.
        assert dual["area_mm2"] == pytest.approx(2 * single["area_mm2"])
        # Bit-identical execution: the accuracy cell is shared.
        assert dual["ppl"] == single["ppl"]

    def test_frontier_keyed_by_mesh(self, engine):
        space = _space(
            shards=(1, 2, 4), topologies=("ring", "fully_connected")
        )
        res = run_sweep(space, engine=engine)
        front = res.frontier(("time_ms", "total_uj"), ("min", "min"))
        assert front
        keys = {(r["shards"], r["topology"]) for r in front}
        assert len(keys) == len(front)  # each mesh at most once
        assert all((r["shards"], r["topology"]) in keys for r in front)
