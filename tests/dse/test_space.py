"""Design-space expansion, constraints, and iso-area normalization."""

import json

import pytest

from repro.dse.space import (
    PRESETS,
    DatatypeChoice,
    DesignSpace,
    get_preset,
    load_space,
    paper_tile_costs,
)
from repro.hw.baselines import AREA_BUDGET_UM2


def _space(**kw):
    defaults = dict(
        name="t",
        arch_axes=(("pe_lanes", (2, 4)),),
        datatypes=(DatatypeChoice(4, "bitmod_fp4"),),
        models=("opt-1.3b",),
    )
    defaults.update(kw)
    return DesignSpace(**defaults)


class TestConstruction:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="not a sweepable"):
            _space(arch_axes=(("warp_cores", (1, 2)),))

    def test_iso_area_grid_axes_rejected(self):
        with pytest.raises(ValueError, match="derived by the iso-area fit"):
            _space(arch_axes=(("pe_rows", (16, 32)),))

    def test_grid_axes_allowed_without_iso_area(self):
        s = _space(arch_axes=(("pe_rows", (16, 32)),), iso_area=False)
        points, skipped = s.points()
        assert {p.arch.pe_rows for p in points} == {16, 32}

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="has no values"):
            _space(arch_axes=(("pe_lanes", ()),))

    def test_no_models_rejected(self):
        with pytest.raises(ValueError, match="no models"):
            _space(models=())

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            _space(tasks=("training",))


class TestExpansion:
    def test_counts_are_cartesian(self):
        s = _space(
            arch_axes=(("pe_lanes", (2, 4)), ("dram_gbps", (25.6, 51.2))),
            datatypes=(
                DatatypeChoice(4, "bitmod_fp4"),
                DatatypeChoice(6, "int6_sym"),
            ),
            tasks=("discriminative", "generative"),
        )
        assert s.n_candidates() == 2 * 2 * 2 * 1 * 2
        points, skipped = s.points()
        assert len(points) + len(skipped) * 1 >= s.n_candidates() // 1 - len(skipped)
        assert len(points) == 16  # nothing violates constraints here

    def test_unsupported_bits_skipped_with_reason(self):
        s = _space(datatypes=(DatatypeChoice(7, "int8_sym"),))
        points, skipped = s.points()
        assert points == []
        assert "supported precisions" in skipped[0][1]

    def test_zero_frequency_skipped_with_reason(self):
        s = _space(arch_axes=(("frequency_ghz", (0.0, 1.0)),))
        points, skipped = s.points()
        assert len(points) == 1
        assert any("frequency_ghz" in reason for _p, reason in skipped)

    def test_zero_buffer_skipped_with_reason(self):
        s = _space(arch_axes=(("weight_buffer_kb", (0, 512)),))
        points, skipped = s.points()
        assert len(points) == 1
        assert any("weight_buffer_kb" in reason for _p, reason in skipped)

    def test_tiny_buffer_fails_tile_fit(self):
        s = _space(
            arch_axes=(("weight_buffer_kb", (1, 512)),),
            datatypes=(DatatypeChoice(8, "int8_sym"),),
        )
        points, skipped = s.points()
        assert len(points) == 1
        assert any("double-buffer" in reason for _p, reason in skipped)

    def test_quick_flag_propagates(self):
        points, _ = _space(quick=True).points()
        assert all(p.quick for p in points)


class TestIsoArea:
    def test_grid_is_tile_integral(self):
        for lanes in (2, 4, 8):
            for ppt in (32, 64, 128):
                s = _space(
                    arch_axes=(
                        ("pe_lanes", (lanes,)),
                        ("pes_per_tile", (ppt,)),
                    )
                )
                (p,), _ = s.points()
                assert p.arch.n_pes % p.arch.pes_per_tile == 0

    def test_area_stays_within_budget(self):
        for lanes in (2, 4, 8):
            s = _space(arch_axes=(("pe_lanes", (lanes,)),))
            (p,), _ = s.points()
            assert p.arch.compute_area_um2() <= 1.06 * AREA_BUDGET_UM2

    def test_wider_pes_mean_fewer_pes(self):
        s = _space(arch_axes=(("pe_lanes", (2, 4, 8)),))
        points, _ = s.points()
        n_by_lanes = {p.arch.pe_lanes: p.arch.n_pes for p in points}
        assert n_by_lanes[2] > n_by_lanes[4] > n_by_lanes[8]

    def test_default_combo_matches_paper_accelerator(self):
        """lanes=4 / tile=64 reproduces make_accelerator('bitmod')."""
        from repro.hw.baselines import make_accelerator

        s = _space(arch_axes=())
        (p,), _ = s.points()
        ref = make_accelerator("bitmod").arch
        assert p.arch.n_pes == ref.n_pes
        assert p.arch.pe_rows == ref.pe_rows
        assert p.arch.pe_area_um2 == pytest.approx(ref.pe_area_um2)


class TestSerialization:
    def test_roundtrip(self):
        s = _space(
            arch_axes=(("pe_lanes", (2, 4)), ("dram_gbps", (25.6,))),
            tasks=("generative",),
            quick=True,
        )
        assert DesignSpace.from_dict(s.to_dict()) == s

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown design-space keys"):
            DesignSpace.from_dict({"name": "x", "turbo": True})

    def test_load_space_file(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(_space().to_dict()))
        assert load_space(path) == _space()


class TestPresets:
    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown DSE preset"):
            get_preset("hyperspace")

    def test_quick_override(self):
        assert get_preset("smoke", quick=True).quick
        assert not get_preset("smoke").quick

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_expand_validly(self, name):
        points, _skipped = get_preset(name).points()
        assert len(points) >= 1

    def test_paper_pareto_is_at_least_200_points(self):
        points, _ = get_preset("paper-pareto").points()
        assert len(points) >= 200


class TestTileCosts:
    def test_paper_tile_costs_published_numbers(self):
        fp16, bitmod = paper_tile_costs()
        assert fp16.total_area == pytest.approx(95498.0)
        assert bitmod.total_area == pytest.approx(99509.0)
