"""Dominance and frontier edge cases for repro.dse.pareto."""

import math

import pytest

from repro.dse.pareto import dominates, pareto_front, pareto_indices


class TestDominates:
    def test_strict_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0), ("min", "min"))
        assert not dominates((2.0, 2.0), (1.0, 1.0), ("min", "min"))

    def test_partial_improvement_is_enough(self):
        assert dominates((1.0, 2.0), (1.0, 3.0), ("min", "min"))

    def test_tradeoff_no_dominance(self):
        a, b = (1.0, 3.0), (3.0, 1.0)
        assert not dominates(a, b, ("min", "min"))
        assert not dominates(b, a, ("min", "min"))

    def test_exact_tie_dominates_neither_way(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0), ("min", "min"))

    def test_max_sense_flips(self):
        assert dominates((5.0,), (3.0,), ("max",))
        assert not dominates((5.0,), (3.0,), ("min",))

    def test_mixed_senses(self):
        # Lower ppl, higher speedup dominates.
        assert dominates((5.0, 9.0), (6.0, 8.0), ("min", "max"))
        assert not dominates((5.0, 7.0), (6.0, 8.0), ("min", "max"))

    def test_nan_never_dominates(self):
        nan = float("nan")
        assert not dominates((nan, 1.0), (2.0, 2.0), ("min", "min"))
        assert not dominates((1.0, 1.0), (nan, 2.0), ("min", "min"))

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (2.0,), ("down",))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates((1.0, 2.0), (1.0, 2.0), ("min",))


class TestParetoIndices:
    def test_simple_front(self):
        rows = [(1.0, 2.0), (2.0, 1.0), (2.0, 2.0)]
        assert pareto_indices(rows, ("min", "min")) == [0, 1]

    def test_all_ties_all_kept(self):
        rows = [(1.0, 1.0)] * 3
        assert pareto_indices(rows, ("min", "min")) == [0, 1, 2]

    def test_single_objective_degenerate(self):
        rows = [(3.0,), (1.0,), (2.0,), (1.0,)]
        # Minimization: every row achieving the minimum survives.
        assert pareto_indices(rows, ("min",)) == [1, 3]
        assert pareto_indices(rows, ("max",)) == [0]

    def test_maximization_both_axes(self):
        rows = [(1.0, 5.0), (5.0, 1.0), (0.5, 0.5)]
        assert pareto_indices(rows, ("max", "max")) == [0, 1]

    def test_nan_rows_dropped_but_harmless(self):
        nan = float("nan")
        rows = [(nan, 0.0), (1.0, 1.0), (2.0, 2.0)]
        assert pareto_indices(rows, ("min", "min")) == [1]

    def test_empty(self):
        assert pareto_indices([], ("min", "min")) == []

    def test_input_order_preserved(self):
        rows = [(2.0, 1.0), (1.0, 2.0)]
        assert pareto_indices(rows, ("min", "min")) == [0, 1]


class TestParetoFront:
    def test_named_objectives(self):
        records = [
            {"ppl": 5.0, "edp": 10.0},
            {"ppl": 6.0, "edp": 5.0},
            {"ppl": 6.0, "edp": 12.0},
        ]
        front = pareto_front(records, ("ppl", "edp"), ("min", "min"))
        assert front == records[:2]

    def test_missing_key_counts_as_nan(self):
        records = [{"ppl": 5.0, "edp": 1.0}, {"ppl": 4.0}]
        front = pareto_front(records, ("ppl", "edp"), ("min", "min"))
        assert front == [records[0]]

    def test_unknown_objective_key_rejected(self):
        """A typo'd objective must not yield a silent empty frontier."""
        records = [{"ppl": 5.0, "edp": 1.0}]
        with pytest.raises(KeyError, match="'epd'"):
            pareto_front(records, ("ppl", "epd"), ("min", "min"))

    def test_none_value_counts_as_nan(self):
        """Sim-only sweep records carry ppl=None; must not crash."""
        records = [{"ppl": None, "edp": 1.0}, {"ppl": 5.0, "edp": 2.0}]
        front = pareto_front(records, ("ppl", "edp"), ("min", "min"))
        assert front == [records[1]]

    def test_fig09_style_frontier(self):
        """The DSE frontier reproduces the Fig. 9 hand-rolled check:
        no rival point may dominate the best BitMoD point."""
        points = [
            {"accel": "bitmod", "ppl": 5.5, "edp": 0.10},
            {"accel": "bitmod", "ppl": 5.8, "edp": 0.06},
            {"accel": "ant", "ppl": 5.6, "edp": 0.30},
            {"accel": "olive", "ppl": 6.4, "edp": 0.25},
        ]
        front = pareto_front(points, ("ppl", "edp"), ("min", "min"))
        assert all(p["accel"] == "bitmod" for p in front)
        assert math.isclose(min(p["edp"] for p in front), 0.06)
