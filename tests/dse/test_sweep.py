"""End-to-end sweep evaluation: records, caching, point keys."""

import pytest

from repro.dse.space import DatatypeChoice, DesignSpace, DesignPoint
from repro.dse.sweep import (
    accelerator_for,
    functional_check,
    point_key,
    run_points,
    run_sweep,
)
from repro.hw.baselines import make_accelerator
from repro.hw.simulator import simulate
from repro.models.zoo import get_model_config
from repro.pipeline import Engine
from repro.pipeline.store import CacheStore


@pytest.fixture
def space():
    return DesignSpace(
        name="t",
        arch_axes=(("pe_lanes", (4, 8)), ("dram_gbps", (25.6, 51.2))),
        datatypes=(DatatypeChoice(4, "bitmod_fp4"),),
        models=("opt-1.3b",),
        tasks=("generative",),
        quick=True,
    )


@pytest.fixture
def engine(tmp_path):
    return Engine(store=CacheStore(tmp_path))


class TestPointKey:
    def _point(self, **kw):
        spec = make_accelerator("bitmod")
        defaults = dict(
            space="t",
            arch=spec.arch,
            model="opt-1.3b",
            task="generative",
            weight_bits=4,
        )
        defaults.update(kw)
        return DesignPoint(**defaults)

    def test_stable(self):
        assert point_key(self._point()) == point_key(self._point())

    def test_sensitive_to_arch(self):
        other = make_accelerator("ant").arch
        assert point_key(self._point()) != point_key(self._point(arch=other))

    def test_sensitive_to_workload_and_bits(self):
        base = point_key(self._point())
        assert base != point_key(self._point(task="discriminative"))
        assert base != point_key(self._point(weight_bits=6))
        assert base != point_key(self._point(model="phi-2b"))

    def test_sensitive_to_dtype(self):
        with_dt = self._point(dtype=DatatypeChoice(4, "bitmod_fp4"))
        assert point_key(self._point()) != point_key(with_dt)

    def test_sensitive_to_cell_schema(self, monkeypatch):
        """Changing cell-evaluation semantics must invalidate records
        of accuracy-bearing points (sim-only points are unaffected)."""
        import repro.pipeline.cells as cells

        with_dt = self._point(dtype=DatatypeChoice(4, "bitmod_fp4"))
        sim_only = self._point()
        before = point_key(with_dt), point_key(sim_only)
        monkeypatch.setattr(cells, "CELL_SCHEMA_VERSION", 999)
        assert point_key(with_dt) != before[0]
        assert point_key(sim_only) == before[1]


class TestRunSweep:
    def test_records_align_and_carry_metrics(self, space, engine):
        res = run_sweep(space, engine=engine)
        assert len(res.records) == len(res.points) == 4
        assert res.computed == 4 and res.cached == 0
        for p, r in zip(res.points, res.records):
            assert r["model"] == p.model
            assert r["bits"] == p.weight_bits
            assert r["arch"]["dram_gbps"] == p.arch.dram_gbps
            assert r["cycles"] > 0 and r["total_uj"] > 0 and r["edp"] > 0
            assert r["ppl"] is not None
            assert r["dppl"] == pytest.approx(r["ppl"] - r["fp16_ppl"])
            assert r["area_mm2"] > 0

    def test_warm_rerun_is_pure_cache(self, space, engine):
        cold = run_sweep(space, engine=engine)
        warm = run_sweep(space, engine=engine)
        assert warm.computed == 0
        assert warm.cached == len(cold.records)
        assert warm.records == cold.records

    def test_more_bandwidth_is_faster(self, space, engine):
        res = run_sweep(space, engine=engine)
        by = {
            (r["arch"]["pe_lanes"], r["arch"]["dram_gbps"]): r["time_ms"]
            for r in res.records
        }
        # Generative decode is memory-bound: bandwidth helps, lanes don't.
        assert by[(4, 51.2)] < by[(4, 25.6)]
        assert by[(8, 51.2)] < by[(8, 25.6)]

    def test_frontier_subset_of_records(self, space, engine):
        res = run_sweep(space, engine=engine)
        front = res.frontier(("ppl", "edp"), ("min", "min"))
        assert front
        for r in front:
            assert r in res.records

    def test_frontier_is_per_workload(self, space, engine):
        """Each (model, task) keeps its own front — EDP values of
        different workloads must never compete."""
        two_model = space.with_(models=("opt-1.3b", "phi-2b"))
        res = run_sweep(two_model, engine=engine)
        front = res.frontier(("ppl", "edp"), ("min", "min"))
        assert {r["model"] for r in front} == {"opt-1.3b", "phi-2b"}


class TestRunPoints:
    def test_sim_only_matches_simulator(self, engine):
        """A dtype-less point reproduces the raw simulate() numbers."""
        spec = make_accelerator("bitmod")
        point = DesignPoint(
            space="t",
            arch=spec.arch,
            model="llama-2-7b",
            task="generative",
            weight_bits=6,
            kv_bits=spec.kv_bits,
        )
        (rec,), computed = run_points([point], engine=engine)
        assert computed == 1
        ref = simulate(get_model_config("llama-2-7b"), spec, "generative", 6)
        assert rec["cycles"] == ref.cycles
        assert rec["total_uj"] == ref.energy.total_uj
        assert rec["ppl"] is None

    def test_group_size_reaches_the_timing_model(self, engine):
        """Tiny scale groups must surface as dequantization stalls."""
        spec = make_accelerator("bitmod")
        arch = spec.arch.__class__(**{**spec.arch.__dict__, "pe_lanes": 8})
        common = dict(
            space="t", arch=arch, model="opt-1.3b", task="discriminative",
            weight_bits=4,
        )
        wide = DesignPoint(group_size=128, **common)
        tiny = DesignPoint(group_size=16, **common)
        assert point_key(wide) != point_key(tiny)
        records, _ = run_points([wide, tiny], engine=engine)
        # 16-element groups at 8 lanes x 2 terms take 4 cycles — shorter
        # than the 8-cycle scale multiply, so every group stalls.
        assert records[1]["cycles"] > records[0]["cycles"]

    def test_duplicates_computed_once(self, engine):
        spec = make_accelerator("bitmod")
        point = DesignPoint(
            space="t",
            arch=spec.arch,
            model="opt-1.3b",
            task="generative",
            weight_bits=4,
        )
        records, computed = run_points([point, point, point], engine=engine)
        assert computed == 1
        assert records[0] == records[1] == records[2]


class TestAcceleratorFor:
    def test_carries_point_fields(self):
        spec = make_accelerator("fp16")
        point = DesignPoint(
            space="t",
            arch=spec.arch,
            model="opt-1.3b",
            task="generative",
            weight_bits=16,
            kv_bits=16,
            macs_per_cycle=2.0,
        )
        a = accelerator_for(point)
        assert a.arch is spec.arch
        assert a.kv_bits == 16
        assert a.macs_per_cycle == 2.0
        assert a.supported_bits == (16,)


class TestFunctionalCheck:
    def _point(self, dtype, granularity="group", group_size=128, **kw):
        spec = make_accelerator("bitmod")
        return DesignPoint(
            space="t",
            arch=spec.arch,
            model="opt-1.3b",
            task="generative",
            weight_bits=4,
            dtype=None if dtype is None else DatatypeChoice(4, dtype, granularity),
            group_size=group_size,
            **kw,
        )

    def test_one_row_per_unique_combo(self):
        points = [
            self._point("bitmod_fp4"),
            self._point("bitmod_fp4"),  # duplicate combo
            self._point("bitmod_fp4", group_size=64),
            self._point("int6_sym"),
            self._point(None),  # sim-only: no datatype to check
        ]
        rows = functional_check(points)
        assert len(rows) == 3
        for row in rows:
            assert row["skipped"] is None
            assert row["backend"] is not None
            assert row["max_abs_err"] < 1e-2

    def test_asymmetric_dtype_reported_skipped(self):
        rows = functional_check([self._point("int4_asym")])
        assert len(rows) == 1
        assert rows[0]["skipped"] is not None
        assert "zero-point" in rows[0]["skipped"]
        assert rows[0]["backend"] is None

    def test_backend_pin_respected(self):
        rows = functional_check([self._point("bitmod_fp4")], backend="numpy")
        assert rows[0]["backend"] == "numpy"
