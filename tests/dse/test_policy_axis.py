"""Tests for the DSE policy axis: expansion, records, frontier shape."""

import pytest

from repro.dse.space import (
    DatatypeChoice,
    DesignSpace,
    PolicyChoice,
    get_preset,
)
from repro.dse.sweep import resolve_plan, run_points, run_sweep
from repro.pipeline import Engine
from repro.pipeline.store import CacheStore

LADDER = (
    DatatypeChoice(3, "bitmod_fp3"),
    DatatypeChoice(4, "bitmod_fp4"),
    DatatypeChoice(8, "int8_sym"),
)


def _space(**kwargs):
    defaults = dict(
        name="policy-test",
        datatypes=LADDER,
        models=("opt-1.3b",),
        tasks=("generative",),
        quick=True,
    )
    defaults.update(kwargs)
    return DesignSpace(**defaults)


class TestPolicyChoice:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown plan solver"):
            PolicyChoice(solver="bogus", budget_mb=1.0)
        with pytest.raises(ValueError, match="need budget_mb"):
            PolicyChoice(solver="budget")
        with pytest.raises(ValueError, match="need threshold"):
            PolicyChoice(solver="threshold")
        with pytest.raises(ValueError, match="unknown sensitivity metric"):
            PolicyChoice(solver="budget", budget_mb=1.0, metric="bogus")

    def test_labels(self):
        assert PolicyChoice(solver="budget", budget_mb=500).label == "budget:500MB"
        assert PolicyChoice(solver="threshold", threshold=0.5).label == "threshold:0.5"


class TestExpansion:
    def test_policies_add_points(self):
        space = _space(
            policies=(PolicyChoice(solver="budget", budget_mb=600.0),)
        )
        points, skipped = space.points()
        policy_points = [p for p in points if p.policy is not None]
        assert len(policy_points) == 1
        assert len(points) == len(LADDER) + 1
        assert not skipped
        # The empty ladder inherited the space datatypes.
        assert policy_points[0].policy.ladder == LADDER
        assert policy_points[0].dtype is None

    def test_infeasible_budget_skipped_with_reason(self):
        space = _space(policies=(PolicyChoice(solver="budget", budget_mb=1.0),))
        points, skipped = space.points()
        assert all(p.policy is None for p in points)
        assert any("below the" in reason for _params, reason in skipped)

    def test_n_candidates_counts_policies(self):
        space = _space(policies=(PolicyChoice(solver="threshold", threshold=0.1),))
        assert space.n_candidates() == len(LADDER) + 1

    def test_round_trip_via_dict(self):
        space = _space(
            policies=(
                PolicyChoice(solver="budget", budget_mb=600.0),
                PolicyChoice(solver="threshold", threshold=0.25, metric="dppl"),
            )
        )
        assert DesignSpace.from_dict(space.to_dict()) == space


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        space = _space(
            policies=tuple(
                PolicyChoice(solver="budget", budget_mb=mb)
                for mb in (500.0, 700.0, 900.0)
            )
        )
        engine = Engine(store=CacheStore(tmp_path_factory.mktemp("dse-policy")))
        with engine:
            return run_sweep(space, engine=engine)

    def test_policy_records_fields(self, result):
        policy_records = [r for r in result.records if r["policy"] is not None]
        assert len(policy_records) == 3
        for r in policy_records:
            assert r["dtype"] == "plan"
            assert r["plan"] is not None and r["plan"]["layers"]
            assert 3.0 <= r["bits"] <= 8.0
            assert r["weight_mb"] is not None
            assert r["ppl"] is not None

    def test_budget_respected_and_monotone(self, result):
        policy_records = sorted(
            (r for r in result.records if r["policy"] is not None),
            key=lambda r: r["weight_mb"],
        )
        budgets = [500.0, 700.0, 900.0]
        for r, budget in zip(policy_records, budgets):
            assert r["weight_mb"] <= budget
        ppls = [r["ppl"] for r in policy_records]
        assert all(a >= b for a, b in zip(ppls, ppls[1:]))
        times = [r["time_ms"] for r in policy_records]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_memory_ppl_frontier_is_monotone(self, result):
        front = sorted(
            result.frontier(objectives=("weight_mb", "ppl"), senses=("min", "min")),
            key=lambda r: r["weight_mb"],
        )
        assert len(front) >= 2
        ppls = [r["ppl"] for r in front]
        assert all(a > b for a, b in zip(ppls, ppls[1:]))

    def test_uniform_datatype_records_carry_weight_mb(self, result):
        uniform = [r for r in result.records if r["policy"] is None]
        assert all(r["weight_mb"] is not None for r in uniform)
        by_bits = sorted(uniform, key=lambda r: r["bits"])
        sizes = [r["weight_mb"] for r in by_bits]
        assert sizes == sorted(sizes)

    def test_warm_rerun_is_pure_replay(self, result, tmp_path):
        engine = Engine(store=CacheStore(tmp_path))
        space = _space(
            policies=(PolicyChoice(solver="budget", budget_mb=700.0),)
        )
        with engine:
            cold = run_sweep(space, engine=engine)
        warm_engine = Engine(store=CacheStore(tmp_path))
        with warm_engine:
            warm = run_sweep(space, engine=warm_engine)
        assert warm.records == cold.records
        assert warm.computed == 0


class TestResolvePlan:
    def test_non_policy_point_rejected(self):
        space = _space()
        points, _ = space.points()
        with pytest.raises(ValueError, match="carries no policy"):
            resolve_plan(points[0])

    def test_same_policy_resolves_identically(self, tmp_path):
        space = _space(policies=(PolicyChoice(solver="budget", budget_mb=800.0),))
        (point,) = [p for p in space.points()[0] if p.policy is not None]
        engine = Engine(store=CacheStore(tmp_path))
        a = resolve_plan(point, engine=engine)
        b = resolve_plan(point, engine=engine)
        assert a.cache_key() == b.cache_key()


class TestPreset:
    def test_memory_budget_preset_expands(self):
        space = get_preset("memory-budget", quick=True)
        points, skipped = space.points()
        assert not skipped
        assert sum(1 for p in points if p.policy is not None) == 8
        assert sum(1 for p in points if p.dtype is not None) == 4
