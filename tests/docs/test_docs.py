"""Documentation health: link integrity + executable doc examples.

Runs the same checks as the CI ``docs`` job, in-process: the link
checker over ``README.md`` and ``docs/*.md``, and doctest over the
python blocks extracted from ``docs/dse.md`` (so the worked DSE
example in the docs can never silently rot).
"""

import doctest
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "scripts"))

import check_links  # noqa: E402
import extract_doctests  # noqa: E402


def _doc_files():
    return [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))


@pytest.mark.parametrize("path", _doc_files(), ids=lambda p: p.name)
def test_no_broken_links(path):
    problems, _n_links = check_links.check_file(path)
    assert problems == [], f"broken links in {path.name}: {problems}"


def test_docs_have_links_to_check():
    """The checker must actually see links (guard against regex rot)."""
    total = sum(check_links.check_file(p)[1] for p in _doc_files())
    assert total >= 3


def test_dse_doc_examples_execute():
    text = (REPO / "docs" / "dse.md").read_text(encoding="utf-8")
    blocks = extract_doctests.extract(text)
    assert len(blocks) >= 4, "docs/dse.md lost its worked example"
    runner = doctest.DocTestRunner(verbose=False)
    parser = doctest.DocTestParser()
    globs = {}
    for i, block in enumerate(blocks):
        test = parser.get_doctest(
            block, globs, name=f"dse.md[{i}]", filename="docs/dse.md", lineno=0
        )
        runner.run(test, clear_globs=False)
        globs = test.globs  # blocks build on one another
    results = runner.summarize(verbose=False)
    assert results.failed == 0, f"{results.failed} doc example(s) failed"
