"""Graceful serve degradation: deadlines, shedding, drain, hot swap,
artifact integrity."""

import asyncio

import numpy as np
import pytest

from repro.models import CausalLM, get_model_config
from repro.quant import QuantConfig
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.serve import (
    ArtifactIntegrityError,
    ContinuousBatcher,
    DeadlineExceeded,
    GenerationConfig,
    InferenceEngine,
    Overloaded,
    Request,
    ServeServer,
    load_artifact,
    save_artifact,
)


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(CausalLM(get_model_config("opt-1.3b"), seed=0))


def _run(coro):
    return asyncio.run(coro)


def _req(rid, prompt_len=6, max_new=4, **kw):
    return Request(
        request_id=rid,
        prompt=np.arange(prompt_len) % 100,
        generation=GenerationConfig(max_new_tokens=max_new),
        **kw,
    )


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.clear_fault_plan()
    yield
    faults.clear_fault_plan()


class TestDeadlines:
    def test_expired_request_fails_with_structured_error(self, engine):
        async def main():
            server = ServeServer(engine, max_batch_tokens=32)
            await server.start()
            with pytest.raises(DeadlineExceeded) as e:
                await server.generate(
                    np.arange(5),
                    GenerationConfig(max_new_tokens=64),
                    deadline_s=1e-9,
                )
            await server.stop()
            return server, e.value

        server, err = _run(main())
        body = err.to_dict()
        assert body["error"] == "deadline_exceeded"
        assert body["deadline_s"] == 1e-9
        assert "request_id" in body and "message" in body
        assert server.metrics.expired == 1
        assert server.metrics.completed == 0

    def test_generous_deadline_completes(self, engine):
        async def main():
            server = ServeServer(engine, max_batch_tokens=32)
            await server.start()
            result = await server.generate(
                np.arange(5), GenerationConfig(max_new_tokens=3), deadline_s=60.0
            )
            await server.stop()
            return result

        assert _run(main()).n_generated == 3

    def test_injected_decode_stall_expires_midstream(self, engine):
        """A serve.decode delay fault stalls the scheduler until the
        request's deadline passes mid-generation."""
        faults.set_fault_plan(
            FaultPlan(
                [FaultSpec(site="serve.decode", action="delay", delay_s=0.05,
                           times=10)]
            )
        )

        async def main():
            server = ServeServer(engine, max_batch_tokens=32)
            await server.start()
            with pytest.raises(DeadlineExceeded) as e:
                await server.generate(
                    np.arange(5),
                    GenerationConfig(max_new_tokens=64),
                    deadline_s=0.08,
                )
            await server.stop()
            return e.value

        err = _run(main())
        assert err.to_dict()["error"] == "deadline_exceeded"

    def test_mixed_deadlines_only_expired_cancelled(self, engine):
        clock = [0.0]
        batcher = ContinuousBatcher(engine, max_batch_tokens=64, clock=lambda: clock[0])
        batcher.submit(_req(0, max_new=2, deadline_s=0.5))
        batcher.submit(_req(1, max_new=2))  # no deadline
        clock[0] = 1.0  # past request 0's deadline before any step ran
        reports = batcher.run_until_idle()
        assert [r for rep in reports for r in rep.expired] == [0]
        assert batcher.finished(1).seq.done
        assert batcher.expired(0).expired
        assert batcher.metrics.expired == 1
        assert batcher.metrics.completed == 1


class TestAdmissionControl:
    def test_bounded_queue_sheds_with_overloaded(self, engine):
        batcher = ContinuousBatcher(engine, max_batch_tokens=32, max_waiting=2)
        batcher.submit(_req(0))
        batcher.submit(_req(1))
        with pytest.raises(Overloaded) as e:
            batcher.submit(_req(2))
        assert e.value.to_dict() == {
            "error": "overloaded",
            "message": "admission queue full for tier 'standard' "
            "(2 waiting, limit 2)",
            "request_id": 2,
            "waiting": 2,
            "tier": "standard",
        }
        assert batcher.metrics.rejected == 1
        # The shed request cost nothing; the queued ones still finish.
        batcher.run_until_idle()
        assert batcher.metrics.completed == 2

    def test_invalid_max_waiting_rejected(self, engine):
        with pytest.raises(ValueError):
            ContinuousBatcher(engine, max_waiting=0)

    def test_draining_server_rejects_new_submits(self, engine):
        async def main():
            server = ServeServer(engine, max_batch_tokens=32)
            await server.start()
            rid = await server.submit(
                np.arange(5), GenerationConfig(max_new_tokens=8)
            )
            stop_task = asyncio.create_task(server.stop(drain=True))
            await asyncio.sleep(0)  # let stop() mark the server draining
            with pytest.raises(Overloaded):
                await server.submit(np.arange(5))
            # Drain still completes the in-flight request.
            result = await server.result(rid)
            await stop_task
            return server, result

        server, result = _run(main())
        assert result.n_generated == 8
        assert server.metrics.rejected == 1
        assert server.metrics.completed == 1


class TestHotSwap:
    def test_reload_drops_zero_requests(self):
        async def main():
            old = InferenceEngine(CausalLM(get_model_config("opt-1.3b"), seed=0))
            new = InferenceEngine(CausalLM(get_model_config("opt-1.3b"), seed=1))
            server = ServeServer(old, max_batch_tokens=32)
            await server.start()
            first = await server.submit(
                np.arange(5), GenerationConfig(max_new_tokens=16)
            )
            # Let the request enter the batch before swapping weights.
            while server.batcher.n_running == 0:
                await asyncio.sleep(0)
            swapped_out = server.reload_artifact(new)
            second = await server.submit(
                np.arange(5), GenerationConfig(max_new_tokens=4)
            )
            results = [await server.result(first), await server.result(second)]
            await server.stop()
            return server, old, new, swapped_out, first, second, results

        server, old, new, swapped_out, first, second, results = _run(main())
        assert swapped_out is old
        assert server.batcher.engine is new
        assert [r.n_generated for r in results] == [16, 4]
        # The in-flight request finished on the engine it started on;
        # the post-swap one ran on the new engine.
        assert server.batcher.finished(first).engine is old
        assert server.batcher.finished(second).engine is new
        assert server.metrics.completed == 2
        assert server.metrics.registry.counter("serve.artifact_reloads").value == 1


class TestArtifactIntegrity:
    def _save(self, tmp_path):
        model = CausalLM(get_model_config("opt-1.3b"), seed=0)
        path = tmp_path / "m.rprosrv"
        save_artifact(path, model, QuantConfig(dtype="int4_asym"))
        return path

    def test_clean_artifact_verifies(self, tmp_path):
        path = self._save(tmp_path)
        art = load_artifact(path)
        assert art.packed  # checksum verified on the way in

    def test_truncated_artifact_detected(self, tmp_path):
        path = self._save(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(ArtifactIntegrityError, match="truncated"):
            load_artifact(path)

    def test_bit_flip_detected(self, tmp_path):
        path = self._save(tmp_path)
        data = bytearray(path.read_bytes())
        data[-50] ^= 0xFF  # deep in the blob section
        path.write_bytes(bytes(data))
        with pytest.raises(ArtifactIntegrityError, match="sha256 mismatch"):
            load_artifact(path)

    def test_verify_false_skips_checks(self, tmp_path):
        path = self._save(tmp_path)
        data = bytearray(path.read_bytes())
        data[-50] ^= 0xFF
        path.write_bytes(bytes(data))
        load_artifact(path, verify=False)  # caller opted out

    def test_reload_of_corrupt_artifact_keeps_old_engine(self, tmp_path):
        path = self._save(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 100])

        async def main():
            engine = InferenceEngine(CausalLM(get_model_config("opt-1.3b"), seed=0))
            server = ServeServer(engine, max_batch_tokens=32)
            await server.start()
            with pytest.raises(ArtifactIntegrityError):
                server.reload_artifact(path)
            # The swap never happened; the server still serves.
            result = await server.generate(
                np.arange(5), GenerationConfig(max_new_tokens=2)
            )
            await server.stop()
            return server, engine, result

        server, engine, result = _run(main())
        assert server.batcher.engine is engine
        assert result.n_generated == 2
        assert server.metrics.registry.counter("serve.artifact_reloads").value == 0
