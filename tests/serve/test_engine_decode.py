"""Incremental KV-cache decode vs. the full-forward reference."""

import numpy as np
import pytest

from repro.models import CausalLM, KVCache, get_model_config, list_models
from repro.quant import KVQuantConfig, QuantConfig
from repro.serve.artifact import save_artifact
from repro.serve.engine import GenerationConfig, InferenceEngine


@pytest.fixture(scope="module")
def model():
    return CausalLM(get_model_config("llama-2-7b"), seed=0)


def _incremental_rows(model, prompt, continuation, kv_quant=None):
    """Last-position logits after the prompt and after each new token."""
    logits, cache = model.prefill(prompt, kv_quant=kv_quant)
    rows = [logits[0, -1]]
    for tok in continuation:
        rows.append(model.decode_step(np.array([tok]), cache)[0])
    return np.stack(rows), cache


class TestDecodeMatchesFullForward:
    @pytest.mark.parametrize("name", list_models())
    def test_logits_allclose_every_model(self, name):
        """Prefill + per-token decode reproduces the monolithic forward
        pass across every architecture family (LN/RoPE/GQA)."""
        m = CausalLM(get_model_config(name), seed=0)
        rng = np.random.default_rng(7)
        prompt = rng.integers(0, m.config.sim_vocab, size=10)
        cont = rng.integers(0, m.config.sim_vocab, size=5)
        ref = m.logits(np.concatenate([prompt, cont]))[0]
        rows, cache = _incremental_rows(m, prompt, cont)
        for i, row in enumerate(rows):
            np.testing.assert_allclose(
                row, ref[len(prompt) - 1 + i], rtol=1e-8, atol=1e-8
            )
        assert cache.seq_len == len(prompt) + len(cont)

    def test_quantized_weights_decode_matches(self, tmp_path, model):
        """The served (packed, reloaded) model decodes to the same
        logits as its own full forward."""
        from repro.serve.artifact import load_artifact

        save_artifact(tmp_path / "m.rsrv", model, QuantConfig(dtype="bitmod_fp4"))
        served = load_artifact(tmp_path / "m.rsrv").instantiate()
        rng = np.random.default_rng(3)
        prompt = rng.integers(0, served.config.sim_vocab, size=12)
        cont = rng.integers(0, served.config.sim_vocab, size=4)
        ref = served.logits(np.concatenate([prompt, cont]))[0]
        rows, _ = _incremental_rows(served, prompt, cont)
        for i, row in enumerate(rows):
            np.testing.assert_allclose(
                row, ref[len(prompt) - 1 + i], rtol=1e-8, atol=1e-8
            )

    def test_batched_decode(self, model):
        """decode_step handles several independent sequences at once."""
        rng = np.random.default_rng(1)
        prompts = rng.integers(0, model.config.sim_vocab, size=(3, 8))
        logits, cache = model.prefill(prompts)
        next_tokens = rng.integers(0, model.config.sim_vocab, size=3)
        rows = model.decode_step(next_tokens, cache)
        assert rows.shape == (3, model.config.sim_vocab)
        for b in range(3):
            full = model.logits(np.concatenate([prompts[b], next_tokens[b : b + 1]]))
            np.testing.assert_allclose(rows[b], full[0, -1], rtol=1e-8, atol=1e-8)


class TestQuantizedKVCache:
    def test_int8_kv_stays_close(self, model):
        rng = np.random.default_rng(5)
        prompt = rng.integers(0, model.config.sim_vocab, size=16)
        cont = rng.integers(0, model.config.sim_vocab, size=4)
        exact, _ = _incremental_rows(model, prompt, cont)
        q8, _ = _incremental_rows(model, prompt, cont, kv_quant=KVQuantConfig(bits=8))
        for a, b in zip(exact, q8):
            assert np.corrcoef(a, b)[0, 1] > 0.99

    def test_lower_kv_bits_hurt_more(self, model):
        rng = np.random.default_rng(5)
        prompt = rng.integers(0, model.config.sim_vocab, size=16)
        exact, _ = _incremental_rows(model, prompt, [])
        e = {}
        for bits in (8, 4):
            rows, _ = _incremental_rows(
                model, prompt, [], kv_quant=KVQuantConfig(bits=bits)
            )
            e[bits] = float(np.mean((rows - exact) ** 2))
        assert e[4] > e[8] > 0

    def test_cache_memory_reflects_bits(self, model):
        rng = np.random.default_rng(5)
        prompt = rng.integers(0, model.config.sim_vocab, size=16)
        _, fp = _incremental_rows(model, prompt, [])
        _, q8 = _incremental_rows(model, prompt, [], kv_quant=KVQuantConfig(bits=8))
        assert q8.memory_bytes * 2 == fp.memory_bytes

    def test_collect_rejects_cache(self, model):
        with pytest.raises(ValueError):
            model.hidden_states(np.arange(4), collect=True, cache=KVCache(4))


class TestEngine:
    def test_greedy_generation_deterministic(self, model):
        engine = InferenceEngine(model)
        prompt = np.arange(6)
        a = engine.generate(prompt, GenerationConfig(max_new_tokens=6))
        b = engine.generate(prompt, GenerationConfig(max_new_tokens=6))
        assert a.generated == b.generated
        assert len(a.generated) == 6

    def test_greedy_matches_full_forward_argmax(self, model):
        """The engine's token stream equals greedy decoding done the
        slow way (full forward each step)."""
        engine = InferenceEngine(model)
        prompt = np.arange(8)
        seq = engine.generate(prompt, GenerationConfig(max_new_tokens=5))
        tokens = list(prompt)
        slow = []
        for _ in range(5):
            row = model.logits(np.array(tokens))[0, -1]
            nxt = int(np.argmax(row))
            slow.append(nxt)
            tokens.append(nxt)
        assert seq.generated == slow

    def test_temperature_sampling_uses_rng(self, model):
        a = InferenceEngine(model, seed=0).generate(
            np.arange(6), GenerationConfig(max_new_tokens=8, temperature=2.0)
        )
        b = InferenceEngine(model, seed=0).generate(
            np.arange(6), GenerationConfig(max_new_tokens=8, temperature=2.0)
        )
        c = InferenceEngine(model, seed=1).generate(
            np.arange(6), GenerationConfig(max_new_tokens=8, temperature=2.0)
        )
        assert a.generated == b.generated  # same seed reproduces
        assert a.generated != c.generated  # different seed diverges

    def test_prompt_validation(self, model):
        engine = InferenceEngine(model)
        with pytest.raises(ValueError):
            engine.start_sequence(np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            engine.start_sequence(np.array([model.config.sim_vocab + 1]))

    def test_lifecycle_errors(self, model):
        engine = InferenceEngine(model)
        seq = engine.start_sequence(np.arange(4), GenerationConfig(max_new_tokens=1))
        with pytest.raises(RuntimeError):
            engine.decode(seq)  # decode before prefill
        engine.prefill(seq)
        with pytest.raises(RuntimeError):
            engine.prefill(seq)  # double prefill
        assert seq.done
        with pytest.raises(RuntimeError):
            engine.decode(seq)  # decode after completion
