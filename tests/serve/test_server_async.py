"""Asyncio front-end and the hardware bridge."""

import asyncio

import numpy as np
import pytest

from repro.models import CausalLM, get_model_config
from repro.serve import (
    GenerationConfig,
    InferenceEngine,
    RequestTrace,
    ServeServer,
    hardware_report,
)


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(CausalLM(get_model_config("opt-1.3b"), seed=0))


def _run(coro):
    return asyncio.run(coro)


class TestServer:
    def test_eight_concurrent_requests(self, engine):
        async def main():
            server = ServeServer(engine, max_batch_tokens=48)
            await server.start()
            rng = np.random.default_rng(0)
            prompts = [rng.integers(0, 2048, size=6 + i) for i in range(8)]
            results = await asyncio.gather(
                *[
                    server.generate(p, GenerationConfig(max_new_tokens=4))
                    for p in prompts
                ]
            )
            await server.stop()
            return server, results, prompts

        server, results, prompts = _run(main())
        assert len(results) == 8
        for res, prompt in zip(results, prompts):
            assert res.n_generated == 4
            assert res.prompt_len == prompt.size
            assert 0 <= res.ttft_s <= res.latency_s
        assert server.metrics.completed == 8
        assert server.metrics.decode_tokens_per_s > 0

    def test_submit_then_result(self, engine):
        async def main():
            server = ServeServer(engine, max_batch_tokens=32)
            await server.start()
            rid = await server.submit(
                np.arange(5), GenerationConfig(max_new_tokens=3)
            )
            result = await server.result(rid)
            # A second await returns the cached result.
            again = await server.result(rid)
            await server.stop()
            return rid, result, again

        rid, result, again = _run(main())
        assert result.request_id == rid
        assert result is again
        assert len(result.tokens) == 3

    def test_greedy_results_match_engine(self, engine):
        """Serving must not change the tokens: batched greedy decode
        equals the engine's synchronous generation."""

        async def main():
            server = ServeServer(engine, max_batch_tokens=64)
            await server.start()
            out = await asyncio.gather(
                *[
                    server.generate(
                        np.arange(4 + i), GenerationConfig(max_new_tokens=5)
                    )
                    for i in range(4)
                ]
            )
            await server.stop()
            return out

        results = _run(main())
        for i, res in enumerate(results):
            ref = engine.generate(
                np.arange(4 + i), GenerationConfig(max_new_tokens=5)
            )
            assert res.tokens == ref.generated

    def test_submit_before_start_rejected(self, engine):
        async def main():
            server = ServeServer(engine)
            with pytest.raises(RuntimeError, match="not started"):
                await server.submit(np.arange(4))

        _run(main())

    def test_stop_is_idempotent(self, engine):
        async def main():
            server = ServeServer(engine)
            await server.start()
            await server.stop()
            await server.stop()

        _run(main())

    def test_stop_drains_in_flight_requests(self, engine):
        """Default stop() finishes outstanding work before returning."""

        async def main():
            server = ServeServer(engine, max_batch_tokens=32)
            await server.start()
            rid = await server.submit(
                np.arange(6), GenerationConfig(max_new_tokens=4)
            )
            await server.stop()
            return await server.result(rid)

        result = _run(main())
        assert len(result.tokens) == 4

    def test_stop_without_drain_fails_pending_futures(self, engine):
        async def main():
            server = ServeServer(engine, max_batch_tokens=32)
            await server.start()
            rid = await server.submit(
                np.arange(6), GenerationConfig(max_new_tokens=64)
            )
            await server.stop(drain=False)
            with pytest.raises(RuntimeError, match="stopped before"):
                await server.result(rid)

        _run(main())


class TestHardwareBridge:
    def test_traces_from_results(self, engine):
        async def main():
            server = ServeServer(engine, max_batch_tokens=48)
            await server.start()
            results = await asyncio.gather(
                *[
                    server.generate(
                        np.arange(8), GenerationConfig(max_new_tokens=4)
                    )
                    for _ in range(3)
                ]
            )
            await server.stop()
            return results

        results = _run(main())
        report = hardware_report("opt-1.3b", results, weight_bits=4.0)
        assert report.n_requests == 3
        assert report.total_energy_uj > 0
        assert report.energy_per_request_uj == pytest.approx(
            report.total_energy_uj / 3
        )

    def test_lower_precision_costs_less(self):
        traces = [RequestTrace(prompt_len=64, gen_len=32)]
        e4 = hardware_report("llama-2-7b", traces, weight_bits=4.0)
        e8 = hardware_report("llama-2-7b", traces, weight_bits=8.0)
        assert e4.total_energy_uj < e8.total_energy_uj
        assert e4.total_time_ms < e8.total_time_ms

    def test_requires_bits_for_name(self):
        with pytest.raises(ValueError, match="weight_bits"):
            hardware_report("opt-1.3b", [RequestTrace(8, 4)])

    def test_requires_generated_tokens(self):
        with pytest.raises(ValueError, match="generated token"):
            hardware_report(
                "opt-1.3b", [RequestTrace(prompt_len=8, gen_len=0)], weight_bits=4.0
            )

    def test_report_dict_shape(self):
        report = hardware_report(
            "opt-1.3b", [RequestTrace(16, 8)] * 2, weight_bits=4.0
        )
        d = report.to_dict()
        assert d["n_requests"] == 2
        assert len(d["per_request"]) == 2
        assert d["per_request"][0]["energy_uj"] > 0
