"""Prefix-sharing KV cache: LRU/budget mechanics and engine integration."""

import dataclasses

import numpy as np
import pytest

from repro.models import CausalLM, get_model_config
from repro.quant.kv import KVQuantConfig
from repro.serve import InferenceEngine, PrefixKVCache
from repro.serve.engine import GenerationConfig
from repro.serve.prefix import DEFAULT_BLOCK_TOKENS


class FakeKV:
    """Stands in for a prefilled KVCache: snapshot() of known size."""

    def __init__(self, bytes_per_token: int = 8):
        self.bytes_per_token = bytes_per_token

    def snapshot(self, length: int):
        half = max(self.bytes_per_token // 2 // 8, 1)  # float64 elements
        k = np.zeros((1, 1, length, half))
        return [(k, k.copy())]


def _prompt(n, start=0):
    return np.arange(start, start + n, dtype=np.int64)


class TestLookupSemantics:
    def test_insert_stores_block_aligned_length(self):
        cache = PrefixKVCache(block_tokens=16)
        assert cache.insert(_prompt(40), FakeKV()) == 32
        assert len(cache) == 1

    def test_lookup_returns_longest_strict_prefix(self):
        cache = PrefixKVCache(block_tokens=16)
        cache.insert(_prompt(40), FakeKV())  # stores 16 and... no: stores 32 only
        hit = cache.lookup(_prompt(40))
        assert hit is not None
        length, snapshot = hit
        assert length == 32
        assert snapshot[0][0].shape[2] == 32

    def test_strict_prefix_leaves_a_tail_token(self):
        # A 32-token prompt must NOT match a 32-token entry even when
        # one exists: the caller needs at least one tail token to
        # forward itself and sample the first output.
        cache = PrefixKVCache(block_tokens=16)
        cache.insert(_prompt(36), FakeKV())  # stores the 32-token prefix
        cache.insert(_prompt(20), FakeKV())  # stores the 16-token prefix
        length, _ = cache.lookup(_prompt(32))
        assert length == 16

    def test_short_prompt_stores_nothing(self):
        cache = PrefixKVCache(block_tokens=16)
        assert cache.insert(_prompt(15), FakeKV()) == 0
        assert len(cache) == 0

    def test_different_tokens_never_match(self):
        cache = PrefixKVCache(block_tokens=4)
        cache.insert(_prompt(8), FakeKV())
        assert cache.lookup(_prompt(8, start=100)) is None
        assert cache.misses == 1

    def test_match_len_is_a_pure_peek(self):
        cache = PrefixKVCache(block_tokens=4)
        cache.insert(_prompt(8), FakeKV())
        hits, misses = cache.hits, cache.misses
        assert cache.match_len(_prompt(9)) == 8
        assert cache.match_len(_prompt(3)) == 0
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_hit_miss_counters_and_stats(self):
        cache = PrefixKVCache(block_tokens=4)
        cache.insert(_prompt(8), FakeKV())
        cache.lookup(_prompt(9))  # hit (8)
        cache.lookup(_prompt(4, start=50))  # miss
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1
        assert stats["inserts"] == 1

    def test_default_block_size_exported(self):
        assert PrefixKVCache().block_tokens == DEFAULT_BLOCK_TOKENS


class TestBudgetAndLRU:
    def test_byte_budget_evicts_lru(self):
        kv = FakeKV(bytes_per_token=16)
        per_entry = sum(a.nbytes + b.nbytes for a, b in kv.snapshot(4))
        cache = PrefixKVCache(block_tokens=4, budget_bytes=2 * per_entry)
        cache.insert(_prompt(4, start=0), kv)
        cache.insert(_prompt(4, start=10), kv)
        cache.insert(_prompt(4, start=20), kv)  # evicts the oldest
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.total_bytes <= cache.budget_bytes
        assert cache.match_len(_prompt(5, start=0)) == 0  # evicted
        assert cache.match_len(_prompt(5, start=20)) == 4

    def test_lookup_refreshes_lru_position(self):
        kv = FakeKV(bytes_per_token=16)
        per_entry = sum(a.nbytes + b.nbytes for a, b in kv.snapshot(4))
        cache = PrefixKVCache(block_tokens=4, budget_bytes=2 * per_entry)
        cache.insert(_prompt(4, start=0), kv)
        cache.insert(_prompt(4, start=10), kv)
        cache.lookup(_prompt(5, start=0))  # entry 0 is now most recent
        cache.insert(_prompt(4, start=20), kv)
        assert cache.match_len(_prompt(5, start=0)) == 4  # survived
        assert cache.match_len(_prompt(5, start=10)) == 0  # evicted

    def test_oversize_snapshot_passes_through(self):
        cache = PrefixKVCache(block_tokens=4, budget_bytes=8)
        assert cache.insert(_prompt(4), FakeKV(bytes_per_token=1024)) == 0
        assert len(cache) == 0
        assert cache.oversize == 1

    def test_reinsert_refreshes_without_duplicating(self):
        cache = PrefixKVCache(block_tokens=4)
        cache.insert(_prompt(8), FakeKV())
        before = cache.total_bytes
        assert cache.insert(_prompt(8), FakeKV()) == 8
        assert len(cache) == 1
        assert cache.total_bytes == before
        assert cache.inserts == 1

    def test_clear_resets_storage(self):
        cache = PrefixKVCache(block_tokens=4)
        cache.insert(_prompt(8), FakeKV())
        cache.clear()
        assert len(cache) == 0
        assert cache.total_bytes == 0

    def test_env_budget_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREFIX_CACHE_MB", "2")
        assert PrefixKVCache().budget_bytes == 2 * 1024 * 1024
        monkeypatch.setenv("REPRO_PREFIX_CACHE_MB", "garbage")
        assert PrefixKVCache().budget_bytes == 64 * 1024 * 1024

    def test_invalid_block_tokens_rejected(self):
        with pytest.raises(ValueError):
            PrefixKVCache(block_tokens=0)


@pytest.fixture(scope="module")
def small_model_config():
    return dataclasses.replace(
        get_model_config("opt-1.3b"),
        sim_layers=2,
        sim_hidden=64,
        sim_heads=4,
        sim_kv_heads=4,
        sim_intermediate=128,
        sim_vocab=512,
    )


class TestEngineIntegration:
    def test_shared_prefix_outputs_byte_identical(self, small_model_config):
        """The acceptance bar: cached-prefix decode streams equal the
        cache-disabled path token for token."""
        rng = np.random.default_rng(0)
        prefix = rng.integers(0, 512, size=48)
        prompts = [
            np.concatenate([prefix, rng.integers(0, 512, size=n)])
            for n in (5, 9, 13, 7)
        ]
        gen = GenerationConfig(max_new_tokens=12)

        plain = InferenceEngine(CausalLM(small_model_config, seed=0))
        shared = InferenceEngine(
            CausalLM(small_model_config, seed=0), prefix_cache=PrefixKVCache()
        )
        reused = 0
        for prompt in prompts:
            baseline = plain.generate(prompt, gen).generated
            seq = shared.start_sequence(prompt, gen)
            shared.prefill(seq)
            while not seq.done:
                shared.decode(seq)
            assert seq.generated == baseline
            reused += seq.prefix_hit_tokens
        stats = shared.prefix_cache.stats()
        assert stats["hits"] >= len(prompts) - 1
        # Later requests actually skipped prefill work.
        assert reused >= 48 * (len(prompts) - 1)

    def test_prefix_hit_tokens_recorded(self, small_model_config):
        engine = InferenceEngine(
            CausalLM(small_model_config, seed=0), prefix_cache=PrefixKVCache()
        )
        prefix = np.arange(32, dtype=np.int64)
        first = engine.start_sequence(np.concatenate([prefix, [40, 41]]))
        engine.prefill(first)
        assert first.prefix_hit_tokens == 0  # cold
        second = engine.start_sequence(np.concatenate([prefix, [60, 61, 62]]))
        engine.prefill(second)
        assert second.prefix_hit_tokens == 32

    def test_kv_quant_disables_prefix_reuse(self, small_model_config):
        cache = PrefixKVCache()
        engine = InferenceEngine(
            CausalLM(small_model_config, seed=0),
            kv_quant=KVQuantConfig(bits=8),
            prefix_cache=cache,
        )
        prompt = np.arange(40, dtype=np.int64)
        for _ in range(2):
            seq = engine.start_sequence(prompt, GenerationConfig(max_new_tokens=2))
            engine.prefill(seq)
            assert seq.prefix_hit_tokens == 0
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
