"""Continuous-batching scheduler behavior."""

import numpy as np
import pytest

from repro.models import CausalLM, get_model_config
from repro.serve.batching import ContinuousBatcher, Request
from repro.serve.engine import GenerationConfig, InferenceEngine


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(CausalLM(get_model_config("opt-1.3b"), seed=0))


def _mk_request(rid, prompt_len, max_new=4, t0=0.0):
    rng = np.random.default_rng(rid)
    return Request(
        request_id=rid,
        prompt=rng.integers(0, 2048, size=prompt_len),
        generation=GenerationConfig(max_new_tokens=max_new),
        submitted_at=t0,
    )


class TestScheduling:
    def test_drains_all_requests(self, engine):
        batcher = ContinuousBatcher(engine, max_batch_tokens=32)
        for rid in range(6):
            batcher.submit(_mk_request(rid, prompt_len=8, max_new=3))
        reports = batcher.run_until_idle()
        assert not batcher.has_work
        assert batcher.metrics.completed == 6
        for rid in range(6):
            assert len(batcher.finished(rid).seq.generated) == 3
        assert sum(r.prefill_tokens for r in reports) == 6 * 8

    def test_token_budget_respected(self, engine):
        batcher = ContinuousBatcher(engine, max_batch_tokens=16)
        for rid in range(8):
            batcher.submit(_mk_request(rid, prompt_len=8, max_new=4))
        for report in batcher.run_until_idle():
            assert report.batch_tokens <= 16

    def test_continuous_admission(self, engine):
        """New prompts join the batch while earlier ones still decode —
        some step must mix prefill and decode work."""
        batcher = ContinuousBatcher(engine, max_batch_tokens=24)
        for rid in range(5):
            batcher.submit(_mk_request(rid, prompt_len=12, max_new=6))
        mixed = [
            r for r in batcher.run_until_idle() if r.prefilled and r.decoded
        ]
        assert mixed, "prefill never overlapped decode"

    def test_decode_priority_over_admission(self, engine):
        """Running sequences decode before new prompts are admitted:
        with the budget filled by decodes, admission waits."""
        batcher = ContinuousBatcher(engine, max_batch_tokens=8)
        for rid in range(8):
            batcher.submit(_mk_request(rid, prompt_len=8, max_new=8))
        batcher.step()  # admits exactly one prompt (budget 8 = prompt)
        assert batcher.n_running == 1
        report = batcher.step()
        # 1 decode + no room for an 8-token prefill? budget 8 - 1 = 7 < 8.
        assert report.decoded and not report.prefilled

    def test_small_budget_round_robins(self, engine):
        """A budget smaller than the running batch still lets every
        sequence make progress across steps."""
        batcher = ContinuousBatcher(engine, max_batch_tokens=4)
        for rid in range(4):
            batcher.submit(_mk_request(rid, prompt_len=4, max_new=8))
        batcher.run_until_idle()
        assert batcher.metrics.completed == 4

    def test_oversized_prompt_rejected(self, engine):
        batcher = ContinuousBatcher(engine, max_batch_tokens=16)
        with pytest.raises(ValueError, match="exceeds"):
            batcher.submit(_mk_request(0, prompt_len=17))

    def test_max_running_caps_batch(self, engine):
        batcher = ContinuousBatcher(engine, max_batch_tokens=64, max_running=2)
        for rid in range(4):
            batcher.submit(_mk_request(rid, prompt_len=4, max_new=8))
        batcher.step()
        assert batcher.n_running == 2
        assert batcher.n_waiting == 2

    def test_metrics_populated(self, engine):
        clock_value = [0.0]

        def clock():
            clock_value[0] += 0.25
            return clock_value[0]

        batcher = ContinuousBatcher(engine, max_batch_tokens=32, clock=clock)
        for rid in range(3):
            batcher.submit(_mk_request(rid, prompt_len=6, max_new=2))
        batcher.run_until_idle()
        m = batcher.metrics
        assert m.submitted == m.completed == 3
        assert m.ttft.count == 3 and m.latency.count == 3
        assert m.decode_tokens == 3 * 2
        assert m.prefill_tokens == 3 * 6
        assert m.elapsed_s > 0
        d = m.to_dict()
        assert d["requests"] == {
            "submitted": 3,
            "completed": 3,
            "expired": 0,
            "rejected": 0,
        }
        assert d["latency"]["p95_s"] >= d["latency"]["p50_s"] >= 0

    def test_unstamped_submit_gets_sane_latency(self, engine):
        """A Request left at submitted_at=0.0 is stamped on submit, so
        TTFT is step-scale, not absolute-clock-scale."""
        batcher = ContinuousBatcher(engine, max_batch_tokens=32)
        batcher.submit(_mk_request(0, prompt_len=6, max_new=2, t0=0.0))
        batcher.run_until_idle()
        assert 0 <= batcher.metrics.ttft.percentile(50) < 60.0
