"""Mixed-precision serve artifacts: byte-exact round trips + replay.

The satellite requirement of the repro.policy PR: saving a model
under a heterogeneous per-layer plan and loading it back must be
byte-exact (packed images, plan, instantiated weights), and the
bit-accurate PE replay must agree with the dequantized reference per
layer.
"""

import numpy as np
import pytest

from repro.models.transformer import CausalLM
from repro.models.zoo import get_model_config
from repro.policy import QuantPlan, layer_names
from repro.quant.config import QuantConfig, quantize_tensor
from repro.serve.artifact import load_artifact, save_artifact
from repro.serve.engine import InferenceEngine

CFG = get_model_config("opt-1.3b")

#: PE-executable ladder (symmetric ints + BitMoD extended floats).
LADDER = (
    QuantConfig(dtype="bitmod_fp3"),
    QuantConfig(dtype="bitmod_fp4", granularity="channel"),
    QuantConfig(dtype="int6_sym"),
    QuantConfig(dtype="int8_sym", group_size=64),
)


@pytest.fixture(scope="module")
def model():
    return CausalLM(CFG, seed=0)


@pytest.fixture(scope="module")
def plan():
    names = layer_names(CFG)
    # Heterogeneous assignment cycling dtype/granularity/group size,
    # with one layer deliberately left FP16.
    mapping = {n: LADDER[i % len(LADDER)] for i, n in enumerate(names[:-1])}
    return QuantPlan.from_mapping(mapping, name="mixed-test")


@pytest.fixture(scope="module")
def saved(model, plan, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "mixed.rpro"
    artifact = save_artifact(path, model, plan)
    return path, artifact


class TestRoundTrip:
    def test_plan_survives(self, saved, plan):
        _path, artifact = saved
        back = load_artifact(saved[0])
        assert back.plan == plan.resolve_names()
        assert back.plan == artifact.plan

    def test_packed_tensors_byte_exact(self, saved):
        path, artifact = saved
        back = load_artifact(path)
        assert set(back.packed) == set(artifact.packed)
        for name, p in artifact.packed.items():
            q = back.packed[name]
            assert q.dtype_name == p.dtype_name
            assert q.bits == p.bits
            assert q.shape == p.shape
            assert q.group_size == p.group_size
            assert q.element_data == p.element_data
            assert np.array_equal(q.sf_codes, p.sf_codes)
            assert np.array_equal(q.channel_scales, p.channel_scales)
            if p.sv_selectors is None:
                assert q.sv_selectors is None
            else:
                assert np.array_equal(q.sv_selectors, p.sv_selectors)

    def test_per_layer_dtypes_heterogeneous(self, saved, plan):
        _path, artifact = saved
        for name, config in plan.items():
            assert artifact.packed[name].dtype_name == config.dtype
        assert len({p.dtype_name for p in artifact.packed.values()}) > 1

    def test_instantiated_weights_match_quantizer(self, saved, model, plan):
        path, _artifact = saved
        rebuilt = load_artifact(path).instantiate()
        for name, config in plan.items():
            ref = quantize_tensor(model.weights[name], config).w_deq
            np.testing.assert_allclose(rebuilt.weights[name], ref, atol=1e-12)

    def test_instantiation_deterministic(self, saved):
        """Loading twice yields bit-identical models (the round trip
        itself is exact; only the scale reconstruction is float math)."""
        path, _artifact = saved
        a = load_artifact(path).instantiate()
        b = load_artifact(path).instantiate()
        for name in a.weights:
            assert np.array_equal(a.weights[name], b.weights[name]), name

    def test_unplanned_layer_stays_fp16(self, saved, model):
        path, _artifact = saved
        rebuilt = load_artifact(path).instantiate()
        fp16_layer = layer_names(CFG)[-1]
        assert np.array_equal(rebuilt.weights[fp16_layer], model.weights[fp16_layer])

    def test_mean_bits_below_uniform_8bit(self, saved):
        _path, artifact = saved
        assert artifact.mean_bits_per_weight < 8.0


class TestFunctionalReplay:
    def test_replay_agrees_with_dequantized_path(self, saved):
        """The satellite's cross-check: the bit-accurate PE datapath on
        the packed images matches x @ w_deq.T per layer."""
        path, artifact = saved
        engine = InferenceEngine.from_artifact(load_artifact(path))
        replays = engine.functional_replay(batch_size=3)
        assert {r.layer for r in replays} == set(artifact.packed)
        for r in replays:
            # FP16 accumulation tolerance of the PE datapath.
            assert r.max_abs_err < 0.05, (r.layer, r.max_abs_err)
            assert r.pe_cycles > 0

    def test_generation_runs_on_mixed_model(self, saved):
        engine = InferenceEngine.from_artifact_file(saved[0])
        seq = engine.generate(np.array([1, 2, 3, 4]))
        assert len(seq.generated) == seq.generation.max_new_tokens


class TestUniformCompatibility:
    def test_uniform_artifact_unchanged(self, model, tmp_path):
        """Plain QuantConfig artifacts neither gain a plan block nor
        change behaviour."""
        path = tmp_path / "uniform.rpro"
        save_artifact(path, model, QuantConfig(dtype="bitmod_fp4"))
        back = load_artifact(path)
        assert back.plan is None
        ref = quantize_tensor(
            model.weights["layers.0.q_proj"], QuantConfig(dtype="bitmod_fp4")
        ).w_deq
        np.testing.assert_allclose(
            back.instantiate().weights["layers.0.q_proj"], ref, atol=1e-12
        )

    def test_uniform_plan_artifact_equals_config_artifact(self, model, tmp_path):
        """A uniform plan packs byte-identically to the global config
        (acceptance: uniform plans reproduce global-config behaviour)."""
        config = QuantConfig(dtype="bitmod_fp4")
        a = save_artifact(tmp_path / "a.rpro", model, config)
        b = save_artifact(
            tmp_path / "b.rpro", model, QuantPlan.uniform(config, layer_names(CFG))
        )
        assert set(a.packed) == set(b.packed)
        for name in a.packed:
            assert a.packed[name].element_data == b.packed[name].element_data
            assert np.array_equal(a.packed[name].sf_codes, b.packed[name].sf_codes)

    def test_empty_plan_rejected(self, model, tmp_path):
        with pytest.raises(ValueError, match="empty plan"):
            save_artifact(tmp_path / "e.rpro", model, QuantPlan(name="empty"))
