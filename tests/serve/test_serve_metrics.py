"""Tests for serve metrics: LatencyStats edge cases, registry wiring."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.metrics import LatencyStats, ServeMetrics


class TestLatencyStatsEdges:
    def test_empty_percentiles(self):
        s = LatencyStats()
        assert s.percentile(50) == 0.0
        assert s.percentile(99) == 0.0
        summary = s.summary()
        assert summary["count"] == 0
        assert summary["mean_s"] == 0.0
        assert summary["max_s"] == 0.0

    def test_single_sample(self):
        s = LatencyStats([0.25])
        for p in (0, 50, 95, 99, 100):
            assert s.percentile(p) == 0.25
        assert s.summary() == {
            "count": 1,
            "mean_s": 0.25,
            "p50_s": 0.25,
            "p95_s": 0.25,
            "p99_s": 0.25,
            "max_s": 0.25,
        }

    def test_two_samples(self):
        s = LatencyStats([0.1, 0.3])
        assert s.percentile(50) == 0.1
        assert s.percentile(95) == 0.3
        assert s.summary()["mean_s"] == pytest.approx(0.2)
        assert s.summary()["max_s"] == 0.3

    def test_sorted_view_invalidated_on_record(self):
        # The historical implementation re-sorted on *every* percentile
        # call; the rebuilt one caches the sorted view and must refresh
        # it when new samples arrive.
        s = LatencyStats([0.5])
        assert s.percentile(50) == 0.5
        s.record(0.1)
        assert s.percentile(0) == 0.1
        s.record(0.9)
        assert s.percentile(100) == 0.9

    def test_reservoir_cap_bounds_growth(self):
        s = LatencyStats(cap=32)
        for i in range(1000):
            s.record(i / 1000.0)
        assert len(s.samples) == 32
        summary = s.summary()
        assert summary["count"] == 1000
        assert summary["max_s"] == 0.999
        assert 0.0 <= summary["p50_s"] <= 0.999

    def test_seconds_suffixed_keys(self):
        keys = set(LatencyStats().summary())
        assert keys == {"count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"}


class TestServeMetricsRegistry:
    def test_int_counter_properties(self):
        m = ServeMetrics()
        m.submitted += 1
        m.submitted += 1
        m.decode_tokens += 40
        assert m.submitted == 2
        assert isinstance(m.submitted, int)
        assert m.decode_tokens == 40

    def test_series_published_to_registry(self):
        reg = MetricsRegistry()
        m = ServeMetrics(registry=reg)
        m.submitted += 3
        m.ttft.record(0.05)
        m.queue_waiting.set(4)
        snap = reg.snapshot()
        assert snap["counters"]["serve.requests.submitted"] == 3
        assert snap["gauges"]["serve.queue.waiting"] == 4
        assert snap["histograms"]["serve.ttft_s"]["count"] == 1

    def test_to_dict_shape_preserved(self):
        m = ServeMetrics()
        m.submitted += 1
        m.completed += 1
        m.prefill_tokens += 8
        m.decode_tokens += 16
        m.steps += 4
        m.ttft.record(0.01)
        m.latency.record(0.2)
        d = m.to_dict()
        assert d["requests"] == {
            "submitted": 1,
            "completed": 1,
            "expired": 0,
            "rejected": 0,
        }
        assert d["tokens"] == {"prefill": 8, "decode": 16, "total": 24}
        assert d["steps"] == 4
        assert d["ttft"]["count"] == 1
        assert d["latency"]["p99_s"] == 0.2

    def test_independent_instances(self):
        a = ServeMetrics()
        b = ServeMetrics()
        a.submitted += 5
        assert b.submitted == 0


class TestLiveSnapshot:
    """snapshot() is the mid-run poll: it must never reset anything."""

    def _loaded(self):
        m = ServeMetrics()
        m.submitted += 4
        m.completed += 2
        m.expired += 1
        m.prefill_tokens += 20
        m.prefill_reused += 12
        m.decode_tokens += 30
        m.queue_waiting.set(1)
        m.queue_running.set(2)
        m.ttft.record(0.01)
        m.ttft.record(0.03)
        m.latency.record(0.2)
        return m

    def test_snapshot_shape(self):
        snap = self._loaded().snapshot()
        assert snap["requests"]["submitted"] == 4
        assert snap["tokens"]["prefill_reused"] == 12
        assert snap["queues"] == {"waiting": 1, "running": 2}
        assert snap["in_flight"] == 1  # 4 submitted - 2 done - 1 expired
        assert snap["ttft"]["count"] == 2

    def test_polling_does_not_reset_or_mutate(self):
        m = self._loaded()
        first = m.snapshot()
        for _ in range(50):
            m.snapshot()
        # Counters and histograms survive arbitrary polling untouched.
        assert m.submitted == 4
        assert m.ttft.count == 2
        again = m.snapshot()
        for key in ("requests", "tokens", "queues", "in_flight", "ttft"):
            assert again[key] == first[key]

    def test_snapshot_interleaves_with_live_updates(self):
        m = self._loaded()
        assert m.snapshot()["in_flight"] == 1
        m.completed += 1
        m.decode_tokens += 5
        snap = m.snapshot()
        assert snap["in_flight"] == 0
        assert snap["tokens"]["decode"] == 35
        # to_dict() keeps its historical shape (no snapshot-only keys).
        assert "queues" not in m.to_dict()
        assert "prefill_reused" not in m.to_dict()["tokens"]
