"""Artifact format: byte-exact save/load round-trips."""

import numpy as np
import pytest

from repro.models import CausalLM, get_model_config
from repro.quant import KVQuantConfig, QuantConfig, quantize_tensor
from repro.quant.packing import pack_tensor, unpack_tensor
from repro.serve.artifact import (
    ARTIFACT_MAGIC,
    ModelArtifact,
    load_artifact,
    pack_model,
    save_artifact,
    write_artifact,
)


@pytest.fixture(scope="module")
def model():
    return CausalLM(get_model_config("llama-2-7b"), seed=0)


def _assert_packed_equal(a, b):
    assert a.dtype_name == b.dtype_name
    assert a.bits == b.bits
    assert a.shape == b.shape
    assert a.group_size == b.group_size
    assert a.groups_per_channel == b.groups_per_channel
    assert a.element_data == b.element_data
    np.testing.assert_array_equal(a.sf_codes, b.sf_codes)
    np.testing.assert_array_equal(a.channel_scales, b.channel_scales)
    if a.sv_selectors is None:
        assert b.sv_selectors is None
    else:
        np.testing.assert_array_equal(a.sv_selectors, b.sv_selectors)
    if a.zeros is None:
        assert b.zeros is None
    else:
        np.testing.assert_array_equal(a.zeros, b.zeros)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "dtype", ["int4_sym", "int3_asym", "bitmod_fp4", "bitmod_fp3", "fp4", "ant3"]
    )
    def test_byte_exact_across_dtypes(self, tmp_path, model, dtype):
        """save -> load -> unpack equals the in-memory quantization,
        byte for byte, across integer / BitMoD / grid datatypes."""
        cfg = QuantConfig(dtype=dtype, group_size=64)
        path = tmp_path / "m.rsrv"
        saved = save_artifact(path, model, cfg)
        loaded = load_artifact(path)

        assert loaded.model_name == model.config.name
        assert loaded.quant_config == cfg
        assert set(loaded.packed) == set(saved.packed)
        for name in saved.packed:
            _assert_packed_equal(saved.packed[name], loaded.packed[name])
        # unpacked weights are bit-identical to direct pack/unpack
        for name, w in model.named_linears().items():
            direct = unpack_tensor(pack_tensor(w, cfg), cfg)
            via_disk = unpack_tensor(loaded.packed[name], cfg)
            np.testing.assert_array_equal(direct, via_disk)

    def test_raw_weights_exact(self, tmp_path, model):
        path = tmp_path / "m.rsrv"
        save_artifact(path, model, QuantConfig(dtype="bitmod_fp4"))
        loaded = load_artifact(path)
        linears = set(model.named_linears())
        for name, w in model.weights.items():
            if name in linears:
                continue
            np.testing.assert_array_equal(loaded.raw_weights[name], w)

    def test_kv_policy_round_trips(self, tmp_path, model):
        path = tmp_path / "m.rsrv"
        kv = KVQuantConfig(bits=4, per_head=False)
        save_artifact(path, model, QuantConfig(dtype="int4_sym"), kv_quant=kv)
        assert load_artifact(path).kv_quant == kv

    def test_instantiated_model_matches_quantized(self, tmp_path, model):
        cfg = QuantConfig(dtype="bitmod_fp4")
        path = tmp_path / "m.rsrv"
        save_artifact(path, model, cfg)
        served = load_artifact(path).instantiate()
        for name, w in model.named_linears().items():
            ref = quantize_tensor(w, cfg).w_deq
            np.testing.assert_allclose(served.weights[name], ref, atol=1e-12)

    def test_dtype_instance_saved_by_name(self, tmp_path, model):
        from repro.dtypes import get_dtype

        cfg = QuantConfig(dtype=get_dtype("int4_sym"))
        path = tmp_path / "m.rsrv"
        save_artifact(path, model, cfg)
        assert load_artifact(path).quant_config.dtype == "int4_sym"


class TestContainer:
    def test_magic_is_checked(self, tmp_path):
        path = tmp_path / "bogus.rsrv"
        path.write_bytes(b"NOTANART" + b"\x00" * 64)
        with pytest.raises(ValueError, match="bad magic"):
            load_artifact(path)

    def test_version_is_checked(self, tmp_path, model):
        path = tmp_path / "m.rsrv"
        save_artifact(path, model, QuantConfig(dtype="int4_sym"))
        data = bytearray(path.read_bytes())
        # Corrupt the format_version field inside the JSON header.
        idx = data.find(b'"format_version":1')
        assert idx > 0
        data[idx : idx + len(b'"format_version":1')] = b'"format_version":9'
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="format v9"):
            load_artifact(path)

    def test_magic_prefix_on_disk(self, tmp_path, model):
        path = tmp_path / "m.rsrv"
        save_artifact(path, model, QuantConfig(dtype="int4_sym"))
        assert path.read_bytes().startswith(ARTIFACT_MAGIC)

    def test_packed_payload_dominates(self, tmp_path, model):
        """At 4 bits the linears' payload is ~4/16 of their FP16 size."""
        cfg = QuantConfig(dtype="int4_sym")
        art = save_artifact(tmp_path / "m.rsrv", model, cfg)
        fp16 = sum(w.size * 2 for w in model.named_linears().values())
        assert art.packed_bytes < 0.30 * fp16
        assert 4.0 <= art.mean_bits_per_weight < 4.5

    def test_pack_model_splits_weights(self, model):
        packed, raw = pack_model(model, QuantConfig(dtype="int4_sym"))
        assert set(packed) == set(model.named_linears())
        assert set(packed).isdisjoint(raw)
        assert set(packed) | set(raw) == set(model.weights)
