"""Property-based stress tests for the continuous-batching scheduler.

A deterministic :class:`FakeEngine` (token *i* of a request is a pure
function of its prompt) makes thousands of randomized scheduler steps
cheap and every output stream checkable.  The invariants, checked on
seeded-random and hypothesis-generated schedules:

* **no request lost** — every submit ends as completed or rejected
  (with deadlines: or expired), and the metrics counters agree;
* **no token out of order** — each finished stream equals the
  request's deterministic expected stream exactly;
* **budget respected** — no step spends more than ``max_batch_tokens``;
* **no priority starvation** — if a running request was skipped in a
  step's decode pass, no strictly-lower-tier request was decoded in
  that same step (strict priority holds step by step, so a high tier
  can never wait on ``batch`` work).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batching import SLO_TIERS, ContinuousBatcher, Request
from repro.serve.engine import GenerationConfig, SequenceState
from repro.serve.errors import Overloaded

MOD = 997
_PREFILLED = object()


def _token(prompt_sum: int, i: int) -> int:
    return int((prompt_sum * 31 + i) % MOD)


class FakeEngine:
    """Deterministic token source satisfying the batcher's engine API."""

    def start_sequence(self, prompt, generation=GenerationConfig()):
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("empty prompt")
        return SequenceState(prompt=prompt, generation=generation)

    def prefill(self, seq):
        seq.cache = _PREFILLED
        seq.generated.append(_token(int(seq.prompt.sum()), 0))

    def decode(self, seq):
        seq.generated.append(_token(int(seq.prompt.sum()), len(seq.generated)))


def expected_stream(prompt, max_new):
    s = int(np.asarray(prompt).sum())
    return [_token(s, i) for i in range(max_new)]


def drive_schedule(specs, max_batch_tokens, seed, max_waiting=8):
    """Submit ``specs`` on a seeded random schedule, checking step
    invariants throughout; returns (batcher, accepted, expected)."""
    rng = np.random.default_rng(seed)
    batcher = ContinuousBatcher(
        FakeEngine(), max_batch_tokens=max_batch_tokens, max_waiting=max_waiting
    )
    pending = list(specs)
    accepted, expected = [], {}
    rejected = 0
    rid = 0
    guard = 0
    while pending or batcher.has_work:
        guard += 1
        assert guard < 10_000, "scheduler failed to drain"
        for _ in range(int(rng.integers(0, 4))):
            if not pending:
                break
            prompt_len, max_new, tier = pending.pop()
            prompt = rng.integers(0, 100, size=prompt_len)
            request = Request(
                request_id=rid,
                prompt=prompt,
                generation=GenerationConfig(max_new_tokens=max_new),
                tier=tier,
                submitted_at=1.0,
            )
            try:
                batcher.submit(request)
            except Overloaded:
                rejected += 1
            else:
                accepted.append(rid)
                expected[rid] = expected_stream(prompt, max_new)
            rid += 1

        pre_running = [(s.request_id, s.priority) for s in batcher._running]
        report = batcher.step()

        # Budget respected.
        assert report.batch_tokens <= max_batch_tokens

        # Strict priority: a skipped running request implies nothing
        # lower-tier was decoded this step.
        decoded = set(report.decoded)
        for req_id, priority in pre_running:
            if req_id not in decoded:
                lower_decoded = [
                    r for r, p in pre_running if p < priority and r in decoded
                ]
                assert not lower_decoded, (
                    f"request {req_id} (priority {priority}) starved while "
                    f"lower-tier {lower_decoded} decoded"
                )

    # Accounting: nothing lost.
    assert batcher.metrics.submitted == len(accepted)
    assert batcher.metrics.completed == len(accepted)
    assert batcher.metrics.rejected == rejected
    assert batcher.metrics.expired == 0

    # Streams exact and in order.
    for req_id in accepted:
        state = batcher.finished(req_id)
        assert state.seq.generated == expected[req_id], f"request {req_id}"
    return batcher, accepted, expected


request_specs = st.lists(
    st.tuples(
        st.integers(1, 10),  # prompt length
        st.integers(1, 5),  # max_new_tokens
        st.sampled_from(sorted(SLO_TIERS)),
    ),
    min_size=1,
    max_size=30,
)


class TestSchedulerProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        specs=request_specs,
        max_batch_tokens=st.integers(10, 48),
        seed=st.integers(0, 2**16),
    )
    def test_invariants_hold_on_random_schedules(
        self, specs, max_batch_tokens, seed
    ):
        drive_schedule(specs, max_batch_tokens, seed)

    def test_large_seeded_stress(self):
        """300 mixed-tier requests through a tight budget."""
        rng = np.random.default_rng(42)
        tiers = sorted(SLO_TIERS)
        specs = [
            (
                int(rng.integers(1, 12)),
                int(rng.integers(1, 6)),
                tiers[int(rng.integers(0, len(tiers)))],
            )
            for _ in range(300)
        ]
        batcher, accepted, _ = drive_schedule(
            specs, max_batch_tokens=24, seed=7, max_waiting=16
        )
        assert len(accepted) > 100  # the run wasn't all sheds

    def test_interactive_decodes_before_batch_every_step(self):
        """The decode pass serves the interactive request ahead of
        batch work on every step, even though it was submitted last."""
        batcher = ContinuousBatcher(FakeEngine(), max_batch_tokens=4)
        for rid, tier in enumerate(["batch", "batch", "interactive"]):
            batcher.submit(
                Request(
                    request_id=rid,
                    prompt=np.array([rid + 1]),
                    generation=GenerationConfig(max_new_tokens=8),
                    tier=tier,
                    submitted_at=1.0,
                )
            )
        first = batcher.step()  # all three admitted (3 prompt tokens)
        assert set(first.prefilled) == {0, 1, 2}
        interactive_steps = 0
        while 2 not in batcher._finished:
            report = batcher.step()
            assert report.decoded[0] == 2
            interactive_steps += 1
        assert interactive_steps > 0
        batcher.run_until_idle()
        assert batcher.metrics.completed == 3


class TestAdmissionShedding:
    def test_batch_tier_sheds_before_standard(self):
        batcher = ContinuousBatcher(
            FakeEngine(), max_batch_tokens=64, max_waiting=4, soft_admit_ratio=0.5
        )
        assert batcher.admit_limit("batch") == 2
        assert batcher.admit_limit("standard") == 4
        assert batcher.admit_limit("interactive") == 4
        for rid in range(2):
            batcher.submit(
                Request(request_id=rid, prompt=np.arange(1, 3), tier="standard",
                        submitted_at=1.0)
            )
        with pytest.raises(Overloaded):
            batcher.submit(
                Request(request_id=2, prompt=np.arange(1, 3), tier="batch",
                        submitted_at=1.0)
            )
        # Standard still admits up to the full bound.
        batcher.submit(
            Request(request_id=3, prompt=np.arange(1, 3), tier="standard",
                    submitted_at=1.0)
        )
        shed = batcher.metrics.registry.counter(
            "serve.requests.shed", tier="batch"
        )
        assert shed.value == 1

    def test_unknown_tier_rejected_loudly(self):
        batcher = ContinuousBatcher(FakeEngine())
        with pytest.raises(ValueError, match="unknown SLO tier"):
            batcher.submit(
                Request(request_id=0, prompt=np.arange(1, 3), tier="platinum")
            )

    def test_invalid_soft_admit_ratio(self):
        with pytest.raises(ValueError):
            ContinuousBatcher(FakeEngine(), soft_admit_ratio=0.0)
        with pytest.raises(ValueError):
            ContinuousBatcher(FakeEngine(), soft_admit_ratio=1.5)

    def test_admission_prefers_highest_waiting_tier(self):
        batcher = ContinuousBatcher(FakeEngine(), max_batch_tokens=4)
        order = [("batch", 0), ("standard", 1), ("interactive", 2)]
        for tier, rid in order:
            batcher.submit(
                Request(
                    request_id=rid,
                    prompt=np.arange(1, 4),
                    generation=GenerationConfig(max_new_tokens=1),
                    tier=tier,
                    submitted_at=1.0,
                )
            )
        first = batcher.step()
        assert first.prefilled == [2]  # interactive first despite FIFO order
        second = batcher.step()
        assert second.prefilled[0] == 1
