"""Bit-accurate functional replay of packed serving artifacts."""

import numpy as np
import pytest

from repro.models import CausalLM, get_model_config
from repro.quant import QuantConfig
from repro.serve import InferenceEngine, functional_replay, save_artifact
from repro.serve.artifact import load_artifact


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    model = CausalLM(get_model_config("opt-1.3b"), seed=0)
    path = tmp_path_factory.mktemp("bridge") / "m.rsrv"
    save_artifact(path, model, QuantConfig(dtype="bitmod_fp4", group_size=64))
    return load_artifact(path)


class TestFunctionalReplay:
    def test_replay_matches_dequantized_matmul(self, artifact):
        layer = sorted(artifact.packed)[0]
        replays = functional_replay(artifact, batch_size=3, layers=[layer])
        assert len(replays) == 1
        rep = replays[0]
        assert rep.batch == 3
        assert rep.shape == tuple(artifact.packed[layer].shape)
        # FP16-accumulation datapath vs ideal matmul: small but nonzero
        assert rep.max_abs_err < 1e-2
        assert rep.pe_cycles > 0

    def test_cycles_scale_with_batch(self, artifact):
        layer = sorted(artifact.packed)[0]
        one = functional_replay(artifact, batch_size=1, layers=[layer])[0]
        four = functional_replay(artifact, batch_size=4, layers=[layer])[0]
        assert four.pe_cycles == 4 * one.pe_cycles
        assert four.groups_processed == 4 * one.groups_processed
        assert one.cycles_per_output == four.cycles_per_output

    def test_term_decode_cached_across_replays(self, artifact):
        from repro.kernels.cache import decode_cache

        layer = sorted(artifact.packed)[0]
        functional_replay(artifact, batch_size=1, layers=[layer])
        assert decode_cache().contains(artifact.packed[layer], "terms")

    def test_backend_pin_is_bit_identical(self, artifact):
        layer = sorted(artifact.packed)[0]
        default = functional_replay(artifact, batch_size=2, layers=[layer])[0]
        pinned = functional_replay(
            artifact, batch_size=2, layers=[layer], backend="numpy"
        )[0]
        assert pinned.pe_cycles == default.pe_cycles
        assert pinned.max_abs_err == default.max_abs_err

    def test_bad_batch_size_rejected(self, artifact):
        with pytest.raises(ValueError):
            functional_replay(artifact, batch_size=0)

    def test_engine_replay_requires_artifact(self, artifact):
        engine = InferenceEngine(artifact.instantiate())
        with pytest.raises(RuntimeError, match="artifact"):
            engine.functional_replay(batch_size=1)

    def test_engine_replay_delegates(self, artifact):
        engine = InferenceEngine.from_artifact(artifact)
        layer = sorted(artifact.packed)[0]
        replays = engine.functional_replay(batch_size=2, layers=[layer])
        assert replays[0].layer == layer
        assert replays[0].batch == 2
