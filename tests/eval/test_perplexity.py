"""Tests for the perplexity proxy."""

import numpy as np
import pytest

from repro.eval.perplexity import PerplexityEvaluator, kl_divergence_mean
from repro.models.zoo import get_model_config
from repro.quant.config import QuantConfig


@pytest.fixture(scope="module")
def ev():
    return PerplexityEvaluator(get_model_config("llama-2-7b"), "wikitext")


class TestKL:
    def test_zero_for_identical(self, rng):
        logits = rng.standard_normal((2, 8, 100))
        assert kl_divergence_mean(logits, logits) == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_different(self, rng):
        a = rng.standard_normal((2, 8, 100))
        b = a + rng.standard_normal((2, 8, 100))
        assert kl_divergence_mean(a, b) > 0

    def test_grows_with_perturbation(self, rng):
        a = rng.standard_normal((2, 8, 100))
        noise = rng.standard_normal((2, 8, 100))
        small = kl_divergence_mean(a, a + 0.1 * noise)
        large = kl_divergence_mean(a, a + 0.5 * noise)
        assert large > small


class TestEvaluator:
    def test_fp16_anchor(self, ev):
        assert ev.fp16_result().ppl == pytest.approx(5.47)
        assert ev.fp16_result().delta == 0.0

    def test_identity_quantizer_gives_anchor(self, ev):
        r = ev.evaluate_quantizer(lambda n, w: w)
        assert r.ppl == pytest.approx(ev.fp16_ppl)
        assert r.divergence == pytest.approx(0.0, abs=1e-12)

    def test_quantization_increases_ppl(self, ev):
        r = ev.evaluate_config("int4_asym")
        assert r.ppl > ev.fp16_ppl
        assert r.delta > 0

    def test_lower_precision_higher_ppl(self, ev):
        p6 = ev.evaluate_config("int6_sym").ppl
        p4 = ev.evaluate_config("int4_sym").ppl
        p3 = ev.evaluate_config("int3_sym").ppl
        assert p6 < p4 < p3

    def test_int6_near_lossless(self, ev):
        """Table II: 6-bit loses almost nothing."""
        r = ev.evaluate_config("int6_sym")
        assert r.delta < 0.15

    def test_bitmod_beats_int_asym(self, ev):
        """The paper's headline result at both precisions."""
        for bits in (4, 3):
            bm = ev.evaluate_config(f"bitmod_fp{bits}").ppl
            ia = ev.evaluate_config(f"int{bits}_asym").ppl
            assert bm < ia

    def test_accepts_quantconfig(self, ev):
        r = ev.evaluate_config(QuantConfig(dtype="fp4", granularity="channel"))
        assert r.ppl > ev.fp16_ppl

    def test_dataset_anchors_differ(self):
        cfg = get_model_config("llama-2-7b")
        wiki = PerplexityEvaluator(cfg, "wikitext")
        c4 = PerplexityEvaluator(cfg, "c4")
        assert wiki.fp16_ppl != c4.fp16_ppl

    def test_deterministic(self):
        cfg = get_model_config("phi-2b")
        a = PerplexityEvaluator(cfg, "wikitext").evaluate_config("int4_asym").ppl
        b = PerplexityEvaluator(cfg, "wikitext").evaluate_config("int4_asym").ppl
        assert a == b
