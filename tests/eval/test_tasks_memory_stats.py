"""Tests for the task harness, memory profiler, and statistics."""

import numpy as np
import pytest

from repro.eval.memory import profile_memory
from repro.eval.stats import profile_granularity
from repro.eval.tasks import TASKS, DiscriminativeEvaluator
from repro.models.zoo import get_model_config
from repro.quant.config import QuantConfig, quantize_tensor


@pytest.fixture(scope="module")
def hella():
    return DiscriminativeEvaluator(
        get_model_config("llama-2-7b"), "hellaswag", n_items=64
    )


class TestTasks:
    def test_three_tasks_defined(self):
        assert set(TASKS) == {"hellaswag", "winogrande", "piqa"}

    def test_fp16_accuracy_near_anchor(self, hella):
        target = get_model_config("llama-2-7b").fp16_acc["hellaswag"] / 100
        assert abs(hella.fp16_accuracy - target) < 0.12

    def test_items_have_choices(self, hella):
        for item in hella.items:
            assert item.tokens.shape[0] == 4
            assert 0 <= item.label < 4

    def test_choices_share_prompt(self, hella):
        for item in hella.items[:8]:
            prompt = item.tokens[:, : item.cont_start]
            assert np.all(prompt == prompt[0])

    def test_identity_quantizer_matches_fp16(self, hella):
        acc = hella.evaluate_quantizer(lambda n, w: w)
        assert acc == pytest.approx(hella.fp16_accuracy * 100)

    def test_quantization_degrades_mostly(self, hella):
        cfg = QuantConfig(dtype="int3_asym")
        acc = hella.evaluate_quantizer(
            lambda n, w: quantize_tensor(w, cfg).w_deq
        )
        assert acc <= hella.fp16_accuracy * 100

    def test_4bit_milder_than_3bit(self, hella):
        accs = {}
        for dt in ("int4_asym", "int3_asym"):
            cfg = QuantConfig(dtype=dt)
            accs[dt] = hella.evaluate_quantizer(
                lambda n, w: quantize_tensor(w, cfg).w_deq
            )
        assert accs["int4_asym"] >= accs["int3_asym"]

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            DiscriminativeEvaluator(get_model_config("opt-1.3b"), "mmlu")


class TestMemoryProfile:
    def test_weights_dominate(self):
        cfg = get_model_config("llama-2-7b")
        for task in ("discriminative", "generative"):
            p = profile_memory(cfg, task)
            assert p.weight_bytes > 4 * p.activation_bytes

    def test_generative_gap_larger(self):
        """Fig. 1: the weight/activation gap widens for generation."""
        cfg = get_model_config("opt-1.3b")
        disc = profile_memory(cfg, "discriminative")
        gen = profile_memory(cfg, "generative")
        assert gen.weight_fraction > disc.weight_fraction

    def test_weight_bits_reduce_traffic(self):
        cfg = get_model_config("opt-1.3b")
        p16 = profile_memory(cfg, "generative", weight_bits=16)
        p4 = profile_memory(cfg, "generative", weight_bits=4)
        assert p4.weight_bytes == pytest.approx(p16.weight_bytes / 4)

    def test_bad_task(self):
        with pytest.raises(ValueError):
            profile_memory(get_model_config("opt-1.3b"), "chat")


class TestGranularityStats:
    def test_fig2_ordering(self):
        """tensor >> channel > group for both max and range."""
        stats = profile_granularity(get_model_config("opt-1.3b"))
        assert stats["tensor"].norm_max > stats["channel"].norm_max
        assert stats["channel"].norm_max > stats["group"].norm_max
        assert stats["tensor"].norm_range > stats["group"].norm_range

    def test_range_roughly_double_max(self):
        stats = profile_granularity(get_model_config("llama-2-7b"))
        g = stats["group"]
        assert 1.2 < g.norm_range / g.norm_max < 2.2
