"""Tests for QuantPlan: construction, keys, execution, accounting."""

import numpy as np
import pytest

from repro.models.zoo import get_model_config
from repro.policy import (
    QuantPlan,
    config_memory_bits,
    layer_names,
    plan_gemm_bits,
    plan_weight_bytes,
    uniform_plan,
)
from repro.quant.config import QuantConfig, quantize_tensor

CFG = get_model_config("opt-1.3b")
FP4 = QuantConfig(dtype="bitmod_fp4")
FP3 = QuantConfig(dtype="bitmod_fp3")


class TestConstruction:
    def test_layer_names_match_named_linears(self):
        from repro.models.transformer import CausalLM

        model = CausalLM(CFG, seed=0)
        assert layer_names(CFG) == sorted(model.named_linears(), key=layer_names(CFG).index)
        assert set(layer_names(CFG)) == set(model.named_linears())

    def test_layers_sorted_and_deduplicated(self):
        plan = QuantPlan(
            name="p", layers=(("layers.1.fc1", FP4), ("layers.0.fc1", FP3))
        )
        assert plan.layer_list() == ["layers.0.fc1", "layers.1.fc1"]
        with pytest.raises(ValueError, match="duplicate layers"):
            QuantPlan(name="p", layers=(("a", FP4), ("a", FP3)))

    def test_uniform_helpers(self):
        plan = uniform_plan(CFG, FP4)
        assert len(plan) == len(layer_names(CFG))
        assert plan.uniform_config() == FP4
        mixed = plan.with_layer("layers.0.fc1", FP3)
        assert mixed.uniform_config() is None
        assert mixed.config_for("layers.0.fc1") == FP3

    def test_config_for_missing_layer_is_fp16(self):
        plan = QuantPlan.single_layer("layers.0.fc1", FP4)
        assert plan.config_for("layers.0.fc2") is None
        assert "layers.0.fc1" in plan and "layers.0.fc2" not in plan


class TestQuantizer:
    def test_uniform_plan_matches_global_config(self, rng):
        w = rng.standard_normal((16, 256))
        fn = uniform_plan(CFG, FP4).as_quantizer()
        ref = quantize_tensor(w, FP4).w_deq
        assert np.array_equal(fn("layers.0.q_proj", w), ref)

    def test_unplanned_layer_passes_through(self, rng):
        w = rng.standard_normal((8, 128))
        fn = QuantPlan.single_layer("layers.0.fc1", FP4).as_quantizer()
        assert fn("layers.2.fc2", w) is w

    def test_apply_plan_clones(self):
        from repro.models.transformer import CausalLM

        model = CausalLM(CFG, seed=0)
        clone = model.apply_plan(QuantPlan.single_layer("layers.0.q_proj", FP3))
        assert clone is not model
        assert not np.array_equal(
            clone.weights["layers.0.q_proj"], model.weights["layers.0.q_proj"]
        )
        assert np.array_equal(
            clone.weights["layers.0.k_proj"], model.weights["layers.0.k_proj"]
        )


class TestCacheKey:
    def test_name_excluded_from_key(self):
        a = QuantPlan.single_layer("layers.0.fc1", FP4, name="a")
        b = QuantPlan.single_layer("layers.0.fc1", FP4, name="b")
        assert a.cache_key() == b.cache_key()

    def test_key_sensitive_to_single_layer_change(self):
        base = uniform_plan(CFG, FP4)
        assert base.cache_key() != base.with_layer("layers.0.fc1", FP3).cache_key()
        assert (
            base.cache_key()
            != base.with_layer("layers.0.fc1", FP4.with_(group_size=64)).cache_key()
        )

    def test_key_insensitive_to_construction_order(self):
        a = QuantPlan(name="p", layers=(("x", FP4), ("y", FP3)))
        b = QuantPlan(name="p", layers=(("y", FP3), ("x", FP4)))
        assert a.cache_key() == b.cache_key()

    def test_dtype_name_and_instance_key_identically(self):
        from repro.dtypes.registry import get_dtype

        by_name = QuantPlan.single_layer("l", QuantConfig(dtype="bitmod_fp4"))
        by_inst = QuantPlan.single_layer("l", QuantConfig(dtype=get_dtype("bitmod_fp4")))
        assert by_name.cache_key() == by_inst.cache_key()


class TestSerialization:
    def test_round_trip(self):
        plan = uniform_plan(CFG, FP4).with_layer(
            "layers.0.fc1", QuantConfig(dtype="int6_sym", granularity="channel")
        )
        back = QuantPlan.from_dict(plan.to_dict())
        assert back == plan.resolve_names()
        assert back.cache_key() == plan.cache_key()

    def test_summary_mentions_layers(self):
        s = uniform_plan(CFG, FP4).summary()
        assert "layers.0.q_proj" in s and "bitmod_fp4" in s


class TestAccounting:
    def test_config_memory_bits_matches_quant_result(self, rng):
        w = rng.standard_normal((16, 256))
        for cfg in (FP4, QuantConfig(dtype="int6_sym", granularity="channel")):
            result = quantize_tensor(w, cfg)
            assert config_memory_bits(cfg, 256) * w.size == pytest.approx(
                result.memory_bits
            )

    def test_uniform_weight_bytes_scale_with_bits(self):
        b3 = plan_weight_bytes(uniform_plan(CFG, FP3), CFG)
        b4 = plan_weight_bytes(uniform_plan(CFG, FP4), CFG)
        assert b3 < b4
        # Element bits dominate: ratio close to 3/4 (metadata adds a bit).
        assert b3 / b4 == pytest.approx(3.0 / 4.0, rel=0.05)

    def test_gemm_bits_uniform(self):
        bits = plan_gemm_bits(uniform_plan(CFG, FP4), CFG)
        assert set(bits) == {g.name for g in CFG.block_gemms(1)} | {"lm_head"}
        assert all(b == 4.0 for b in bits.values())

    def test_gemm_bits_mixed_mean(self):
        plan = uniform_plan(CFG, FP3)
        # Upgrade one of four fc1 layers to 8-bit: mean = (8+3*3)/4.
        plan = plan.with_layer("layers.0.fc1", QuantConfig(dtype="int8_sym"))
        bits = plan_gemm_bits(plan, CFG)
        assert bits["fc1"] == pytest.approx((8 + 3 * 3) / 4)
        assert bits["q_proj"] == 3.0

    def test_unplanned_layers_count_as_fp16(self):
        empty = QuantPlan(name="none")
        bits = plan_gemm_bits(empty, CFG)
        assert all(b == 16.0 for b in bits.values())
        assert plan_weight_bytes(empty, CFG) == pytest.approx(
            sum(g.weight_elements for g in CFG.block_gemms(1)) * 2.0
        )
