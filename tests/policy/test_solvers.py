"""Tests for the allocation solvers and the accelerator policy."""

import pytest

from repro.models.zoo import get_model_config
from repro.pipeline import Engine
from repro.pipeline.store import CacheStore
from repro.policy import (
    budget_plan,
    make_plan,
    plan_floor_bytes,
    plan_weight_bytes,
    profile_sensitivity,
    threshold_plan,
    uniform_plan,
)
from repro.quant.config import QuantConfig

MODEL = "opt-1.3b"
CFG = get_model_config(MODEL)
LADDER = (
    QuantConfig(dtype="bitmod_fp3"),
    QuantConfig(dtype="bitmod_fp4"),
    QuantConfig(dtype="int6_sym"),
    QuantConfig(dtype="int8_sym"),
)


@pytest.fixture(scope="module")
def profile(tmp_path_factory):
    engine = Engine(store=CacheStore(tmp_path_factory.mktemp("policy-cells")))
    return profile_sensitivity(MODEL, LADDER, metric="layer_mse", engine=engine)


def _total_damage(profile, plan):
    total = 0.0
    for i, layer in enumerate(profile.layers):
        total += profile.scores[i][profile.candidates.index(plan.config_for(layer))]
    return total


class TestThresholdSolver:
    def test_huge_threshold_picks_cheapest_everywhere(self, profile):
        plan = threshold_plan(profile, CFG, threshold=1e9)
        assert plan.uniform_config() == LADDER[0]

    def test_zero_threshold_falls_back_to_richest(self, profile):
        plan = threshold_plan(profile, CFG, threshold=0.0)
        assert plan.uniform_config() == LADDER[-1]

    def test_intermediate_threshold_is_mixed_and_compliant(self, profile):
        mid = sorted(s for row in profile.scores for s in row)[
            len(profile.layers) * len(LADDER) // 2
        ]
        plan = threshold_plan(profile, CFG, threshold=mid)
        dtypes = {c.dtype for _n, c in plan.items()}
        assert len(dtypes) > 1
        for i, layer in enumerate(profile.layers):
            j = profile.candidates.index(plan.config_for(layer))
            score = profile.scores[i][j]
            # Either compliant, or the layer's best available candidate.
            assert score <= mid or j == len(LADDER) - 1


class TestBudgetSolver:
    def test_floor_budget_yields_cheapest_plan(self, profile):
        floor = plan_floor_bytes(LADDER, CFG)
        plan = budget_plan(profile, CFG, floor * 1.0001)
        assert plan.uniform_config() == LADDER[0]
        assert plan_weight_bytes(plan, CFG) <= floor * 1.0001

    def test_below_floor_rejected(self, profile):
        floor = plan_floor_bytes(LADDER, CFG)
        with pytest.raises(ValueError, match="below the floor"):
            budget_plan(profile, CFG, floor * 0.9)

    def test_huge_budget_buys_every_useful_upgrade(self, profile):
        plan = budget_plan(profile, CFG, 1e12)
        # Greedy stops only when no upgrade reduces damage further.
        tight = budget_plan(profile, CFG, plan_weight_bytes(plan, CFG) + 1.0)
        assert tight.cache_key() == plan.cache_key()

    def test_dominated_rung_does_not_block_chain(self):
        """A mid-ladder candidate scoring worse than its cheaper
        neighbour must be jumped over, not terminate the layer's
        upgrade chain."""
        from repro.policy.sensitivity import SensitivityProfile

        prof = SensitivityProfile(
            model=MODEL,
            dataset="wikitext",
            metric="layer_mse",
            quick=False,
            candidates=LADDER[:3],  # fp3 / fp4 / int6, cost ascending
            layers=("layers.0.q_proj",),
            # fp4 measures *worse* than fp3; int6 is strictly best.
            scores=((5.0, 6.0, 0.1),),
        )
        plan = budget_plan(prof, CFG, 1e12)
        assert plan.config_for("layers.0.q_proj") == LADDER[2]

    def test_monotone_in_budget(self, profile):
        floor = plan_floor_bytes(LADDER, CFG)
        budgets = [floor * f for f in (1.01, 1.2, 1.5, 1.9, 2.4)]
        plans = [budget_plan(profile, CFG, b) for b in budgets]
        sizes = [plan_weight_bytes(p, CFG) for p in plans]
        damages = [_total_damage(profile, p) for p in plans]
        for b, s in zip(budgets, sizes):
            assert s <= b
        assert sizes == sorted(sizes)
        assert all(d1 >= d2 for d1, d2 in zip(damages, damages[1:]))


class TestMakePlan:
    def test_uniform_solver(self):
        plan = make_plan(MODEL, "uniform", [LADDER[1]])
        assert plan == uniform_plan(CFG, LADDER[1])

    def test_uniform_solver_needs_one_candidate(self):
        with pytest.raises(ValueError, match="exactly one candidate"):
            make_plan(MODEL, "uniform", LADDER)

    def test_budget_solver_through_engine(self, tmp_path):
        engine = Engine(store=CacheStore(tmp_path))
        floor = plan_floor_bytes(LADDER, CFG)
        plan = make_plan(
            MODEL,
            "budget",
            LADDER,
            budget_mb=floor / 1e6 * 1.3,
            metric="layer_mse",
            engine=engine,
        )
        assert plan_weight_bytes(plan, CFG) <= floor * 1.3

    def test_missing_parameters_rejected(self):
        with pytest.raises(ValueError, match="budget solver needs budget_mb"):
            make_plan(MODEL, "budget", LADDER)
        with pytest.raises(ValueError, match="threshold solver needs threshold"):
            make_plan(MODEL, "threshold", LADDER)
        with pytest.raises(ValueError, match="unknown plan solver"):
            make_plan(MODEL, "bogus", LADDER)


class TestAcceleratorPolicy:
    """The engine-backed replacement of the old lru_cache memo."""

    def test_respects_engine_reconfiguration(self, tmp_path, monkeypatch):
        """The measured policy must follow the live engine, not a stale
        module-level memo (the bug the refactor removes)."""
        from repro import pipeline
        from repro.experiments.policy import choose_weight_bits

        monkeypatch.setattr(
            pipeline.engine,
            "_ENGINE",
            Engine(store=CacheStore(tmp_path / "a")),
        )
        bits_a = choose_weight_bits("ant", "llama-2-13b", "generative")
        store_a_entries = len(list((tmp_path / "a").rglob("*.json")))
        assert store_a_entries > 0

        # Reconfigure to a different cache dir: the cells must land in
        # the *new* store (a process-lifetime memo would skip it).
        monkeypatch.setattr(
            pipeline.engine,
            "_ENGINE",
            Engine(store=CacheStore(tmp_path / "b")),
        )
        bits_b = choose_weight_bits("ant", "llama-2-13b", "generative")
        assert bits_a == bits_b
        assert len(list((tmp_path / "b").rglob("*.json"))) > 0

    def test_memoized_within_engine(self, tmp_path):
        engine = Engine(store=CacheStore(tmp_path))
        from repro.policy import accelerator_weight_bits

        accelerator_weight_bits("olive", "opt-1.3b", "generative", engine=engine)
        computed = engine.computed
        accelerator_weight_bits("olive", "opt-1.3b", "discriminative", engine=engine)
        assert engine.computed == computed  # same cell, engine memo hit
