"""Tests for the sensitivity profiler and its cached probe cells."""

import pytest

from repro.models.zoo import get_model_config
from repro.pipeline import CellSpec, Engine, cell_key
from repro.pipeline.store import CacheStore
from repro.policy import QuantPlan, layer_names, profile_sensitivity
from repro.quant.config import QuantConfig

MODEL = "opt-1.3b"
CFG = get_model_config(MODEL)
LADDER = (
    QuantConfig(dtype="bitmod_fp3"),
    QuantConfig(dtype="bitmod_fp4"),
    QuantConfig(dtype="int8_sym"),
)


class TestLayerMseCells:
    def test_cell_value_matches_direct_computation(self, tmp_path):
        from repro.methods.base import layer_output_mse
        from repro.pipeline.cells import compute_cell
        from repro.pipeline.context import get_calibration, get_model

        layer = "layers.0.q_proj"
        spec = CellSpec(
            model=MODEL,
            kind="layer_mse",
            plan=QuantPlan.single_layer(layer, LADDER[0]),
        )
        cell = compute_cell(spec)
        model = get_model(CFG, 0)
        calib = get_calibration(CFG, seed=0, dataset="wikitext", batch=2, seq=64)
        from repro.quant.config import quantize_tensor

        w = model.named_linears()[layer]
        expected = layer_output_mse(
            calib[layer], w, quantize_tensor(w, LADDER[0]).w_deq
        )
        assert cell["layer_mse"] == pytest.approx(expected)

    def test_layer_mse_needs_single_layer_plan(self):
        with pytest.raises(ValueError, match="exactly one layer"):
            cell_key(
                CellSpec(
                    model=MODEL,
                    kind="layer_mse",
                    plan=QuantPlan.uniform(LADDER[0], ["a", "b"]),
                )
            )

    def test_plan_exclusive_with_quant(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            cell_key(
                CellSpec(
                    model=MODEL,
                    quant=LADDER[0],
                    plan=QuantPlan.single_layer("layers.0.fc1", LADDER[0]),
                )
            )

    def test_unknown_layer_lists_known(self):
        from repro.pipeline.cells import compute_cell

        with pytest.raises(KeyError, match="known: "):
            compute_cell(
                CellSpec(
                    model=MODEL,
                    kind="layer_mse",
                    plan=QuantPlan.single_layer("layers.99.bogus", LADDER[0]),
                )
            )


class TestProfiler:
    def test_layer_mse_profile_shape_and_caching(self, tmp_path):
        engine = Engine(store=CacheStore(tmp_path))
        prof = profile_sensitivity(MODEL, LADDER, metric="layer_mse", engine=engine)
        n_layers = len(layer_names(CFG))
        assert len(prof.layers) == n_layers
        assert all(len(row) == len(LADDER) for row in prof.scores)
        assert all(s >= 0.0 for row in prof.scores for s in row)
        assert engine.computed == n_layers * len(LADDER)

        # Second profiling (fresh engine, same store) is pure replay.
        warm = Engine(store=CacheStore(tmp_path))
        again = profile_sensitivity(MODEL, LADDER, metric="layer_mse", engine=warm)
        assert again == prof
        assert warm.computed == 0

    def test_fewer_bits_more_damage_on_average(self, tmp_path):
        engine = Engine(store=CacheStore(tmp_path))
        prof = profile_sensitivity(MODEL, LADDER, metric="layer_mse", engine=engine)
        mean = [
            sum(row[j] for row in prof.scores) / len(prof.scores)
            for j in range(len(LADDER))
        ]
        assert mean[0] > mean[1] > mean[2]  # fp3 > fp4 > int8 damage

    def test_dppl_metric_uses_ppl_cells(self, tmp_path):
        engine = Engine(store=CacheStore(tmp_path))
        layers = layer_names(CFG)[:2]
        prof = profile_sensitivity(
            MODEL, LADDER[:1], metric="dppl", layers=layers, engine=engine
        )
        assert prof.scores[0][0] >= 0.0
        assert engine.computed == 2

    def test_ranked_layers_orders_by_damage(self, tmp_path):
        engine = Engine(store=CacheStore(tmp_path))
        prof = profile_sensitivity(MODEL, LADDER[:1], metric="layer_mse", engine=engine)
        ranked = prof.ranked_layers(0)
        damages = [prof.score(l, 0) for l in ranked]
        assert damages == sorted(damages, reverse=True)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown sensitivity metric"):
            profile_sensitivity(MODEL, LADDER, metric="bogus")

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError, match="at least one candidate"):
            profile_sensitivity(MODEL, ())
