"""End-to-end bit-accurate pipeline: quantize -> pack -> decode -> PE GEMM.

This walks one layer's weights through the exact path a deployed
BitMoD accelerator would use:

1. Algorithm 1 quantizes the weights (per-group special values).
2. The tensor is serialized to its DRAM image (bit-packed codes,
   INT8 scaling factors, 2-bit SV selectors).
3. The term generator decodes each group into bit-serial terms.
4. The bit-accurate PE computes the GEMM, dequantizing per-group
   partial sums with the 8-cycle shift-add unit.

Run:  python examples/bit_accurate_gemm.py
"""

import numpy as np

from repro.hw.functional import FunctionalGemm
from repro.quant import QuantConfig, quantize_tensor
from repro.quant.packing import pack_tensor

rng = np.random.default_rng(0)
weights = rng.standard_normal((8, 512))
acts = rng.standard_normal((4, 512)).astype(np.float16)

for dtype in ("int6_sym", "bitmod_fp4", "bitmod_fp3"):
    cfg = QuantConfig(dtype=dtype)

    packed = pack_tensor(weights, cfg)
    print(f"{dtype}: DRAM image {packed.total_bytes} bytes "
          f"({packed.bits_per_weight:.3f} bits/weight, "
          f"fp16 would be {weights.size * 2} bytes)")

    result = FunctionalGemm(cfg).run(acts, weights)
    reference = acts.astype(np.float64) @ quantize_tensor(weights, cfg).w_deq.T
    err = np.max(np.abs(result.output - reference)) / np.max(np.abs(reference))
    print(f"  GEMM through bit-accurate PEs: max rel err {err:.2e}, "
          f"{result.pe_cycles} PE-cycles over {result.groups_processed} groups\n")

print("The INT6/FP4 PE-cycle ratio is 3:2 — the bit-serial throughput")
print("trade-off of Section IV-B, observed in actual datapath execution.")
