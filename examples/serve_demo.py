"""End-to-end quantized serving: pack, reload, batch-serve, cost out.

The deployment path the BitMoD paper motivates, on the synthetic
substrate:

1. quantize a zoo model with BitMoD FP4 and save the bit-packed
   artifact (element codes + INT8 scale codes + special-value
   selectors on disk);
2. reload the artifact into the inference engine — incremental
   KV-cache decode (INT8-quantized cache), not full recompute;
3. serve concurrent clients through the continuous-batching asyncio
   server and report throughput / TTFT / latency percentiles;
4. replay the served traffic through the accelerator model for
   full-scale modeled latency and energy per request.

Run:  python examples/serve_demo.py [model-name]
"""

import asyncio
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.models import CausalLM, get_model_config
from repro.pipeline import CacheStore
from repro.quant import KVQuantConfig, QuantConfig
from repro.serve import (
    GenerationConfig,
    InferenceEngine,
    ServeServer,
    hardware_report,
    load_artifact,
    save_artifact,
)

model_name = sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b"
N_REQUESTS = 8
MAX_NEW = 24

# --- 1. quantize + pack -------------------------------------------------
# The pipeline cache makes repacking free: each tensor's bit-packed
# image is content-addressed by (weight bytes, quant key), so a second
# run of this demo rebuilds the artifact without quantizing anything.
config = get_model_config(model_name)
model = CausalLM(config, seed=0)
qcfg = QuantConfig(dtype="bitmod_fp4", group_size=128)
path = Path(tempfile.gettempdir()) / f"{model_name}.rsrv"
artifact = save_artifact(
    path, model, qcfg, kv_quant=KVQuantConfig(bits=8), store=CacheStore()
)
print(f"Packed {config.name}: {len(artifact.packed)} linears -> {path}")
print(f"  {artifact.mean_bits_per_weight:.2f} bits/weight "
      f"({artifact.packed_bytes / 1024:.0f} KiB packed payload at sim scale)")

# --- 2. reload into the engine -----------------------------------------
engine = InferenceEngine.from_artifact(load_artifact(path))
print(f"  reloaded; KV cache policy: INT{engine.kv_quant.bits} per-head\n")

# --- 3. serve concurrent clients ---------------------------------------
rng = np.random.default_rng(0)
prompts = [rng.integers(0, config.sim_vocab, size=int(rng.integers(8, 48)))
           for _ in range(N_REQUESTS)]


async def main():
    server = ServeServer(engine, max_batch_tokens=128)
    await server.start()
    results = await asyncio.gather(*[
        server.generate(p, GenerationConfig(max_new_tokens=MAX_NEW))
        for p in prompts
    ])
    await server.stop()
    return server, results


server, results = asyncio.run(main())
m = server.metrics.to_dict()
print(f"Served {m['requests']['completed']} concurrent requests "
      f"in {m['elapsed_s']:.2f}s over {m['steps']} scheduler steps")
print(f"  throughput: {m['decode_tokens_per_s']:.0f} generated tok/s "
      f"({m['total_tokens_per_s']:.0f} tok/s incl. prefill)")
print(f"  TTFT    p50={m['ttft']['p50_s'] * 1e3:.0f}ms  "
      f"p95={m['ttft']['p95_s'] * 1e3:.0f}ms")
print(f"  latency p50={m['latency']['p50_s'] * 1e3:.0f}ms  "
      f"p95={m['latency']['p95_s'] * 1e3:.0f}ms\n")

# --- 4. modeled accelerator cost ---------------------------------------
report = hardware_report(artifact, results, accelerator="bitmod")
fp16 = hardware_report(artifact.model_name, results, accelerator="fp16",
                       weight_bits=16.0)
print(f"Modeled on the BitMoD accelerator ({config.name} full-size, "
      f"{report.weight_bits:.2f}-bit weights):")
print(f"  {report.energy_per_request_uj / 1e3:.1f} mJ per request "
      f"({report.total_time_ms / report.n_requests:.0f} ms modeled latency)")
print(f"  vs FP16 baseline: {fp16.energy_per_request_uj / 1e3:.1f} mJ "
      f"-> {fp16.total_energy_uj / report.total_energy_uj:.2f}x energy saving")

# --- 5. bit-accurate datapath replay -----------------------------------
# The vectorized kernel engine can push real serving batch sizes
# through the bit-accurate PE datapath against the packed weight
# images themselves: measured PE cycles plus a numerical cross-check
# that the DRAM image executes to the dequantized weights.
layer = sorted(artifact.packed)[0]
replay = engine.functional_replay(batch_size=N_REQUESTS, layers=[layer])[0]
print(f"\nBit-accurate replay of {replay.layer} at batch {replay.batch}:")
print(f"  {replay.pe_cycles} PE cycles over {replay.groups_processed} groups "
      f"({replay.cycles_per_output:.0f} cycles/output)")
print(f"  max |PE - dequantized matmul| = {replay.max_abs_err:.2e}")
