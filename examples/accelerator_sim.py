"""Simulate the BitMoD accelerator against FP16 / ANT / OliVe baselines.

Reproduces, for one model, the workflow behind Figs. 7 and 8: iso-area
accelerators, measured-quality weight-precision policy, latency and
energy breakdown.

Run:  python examples/accelerator_sim.py [model-name]
"""

import sys

from repro.experiments.policy import choose_weight_bits
from repro.hw import make_accelerator, simulate
from repro.models import get_model_config

model_name = sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b"
config = get_model_config(model_name)

accels = {name: make_accelerator(name) for name in ("fp16", "ant", "olive", "bitmod")}
print(f"Model: {config.name}   (iso-compute-area accelerators)")
for name, accel in accels.items():
    print(f"  {name:7s}: {accel.arch.n_pes} PEs, "
          f"{accel.arch.compute_area_um2() / 1e6:.2f} mm^2")

for task in ("discriminative", "generative"):
    print(f"\n== {task} (prompt 256{', generate 256' if task == 'generative' else ''}) ==")
    base = simulate(config, accels["fp16"], task, 16)
    print(f"  {'accel':16s} {'bits':>4s} {'latency':>10s} {'speedup':>8s} "
          f"{'energy':>9s} {'E-ratio':>8s}")
    print(f"  {'fp16':16s} {16:4d} {base.time_ms:9.1f}ms {1.0:7.2f}x "
          f"{base.energy.total_uj / 1e3:8.1f}mJ {1.0:7.2f}x")
    configs = [("ant", False), ("olive", False),
               ("bitmod-lossless", True), ("bitmod-lossy", False)]
    for label, lossless in configs:
        accel_name = label.split("-")[0]
        bits = choose_weight_bits(accel_name, config.name, task, lossless=lossless)
        r = simulate(config, accels[accel_name], task, bits)
        print(f"  {label:16s} {bits:4d} {r.time_ms:9.1f}ms "
              f"{base.cycles / r.cycles:7.2f}x "
              f"{r.energy.total_uj / 1e3:8.1f}mJ "
              f"{base.energy.total_uj / r.energy.total_uj:7.2f}x")
