"""Mixed-precision deployment planning, end to end.

The adaptive-datatype story at model granularity, on the synthetic
substrate:

1. profile every decoder-block linear's sensitivity to a ladder of
   candidate datatypes (cheap calibration-MSE probes, cached as
   content-addressed pipeline cells);
2. solve per-layer plans under a sweep of weight-memory budgets with
   the greedy-knapsack solver and compare their measured perplexity
   against the uniform ladder;
3. pack the budget plan into a mixed-precision serve artifact,
   reload it byte-exactly, and cross-check a packed layer on the
   bit-accurate PE datapath;
4. cost the deployment on the accelerator model at the plan's
   per-layer precisions.

Run:  python examples/policy_demo.py [model-name]
"""

import sys
import tempfile
from pathlib import Path

from repro.hw.baselines import make_accelerator
from repro.hw.simulator import simulate, simulate_plan
from repro.models import get_model_config
from repro.models.transformer import CausalLM
from repro.pipeline import Engine
from repro.pipeline.cells import CellSpec
from repro.pipeline.store import CacheStore
from repro.policy import (
    budget_plan,
    plan_floor_bytes,
    plan_gemm_bits,
    plan_weight_bytes,
    profile_sensitivity,
)
from repro.quant import QuantConfig
from repro.serve import InferenceEngine, load_artifact, save_artifact

LADDER = (
    QuantConfig(dtype="bitmod_fp3"),
    QuantConfig(dtype="bitmod_fp4"),
    QuantConfig(dtype="int6_sym"),
    QuantConfig(dtype="int8_sym"),
)


def main(model_name: str = "opt-1.3b") -> None:
    cfg = get_model_config(model_name)
    engine = Engine(store=CacheStore())

    # 1. Sensitivity profile: one cached cell per (layer, candidate).
    print(f"=== profiling {model_name} over {len(LADDER)} candidates ===")
    prof = profile_sensitivity(model_name, LADDER, metric="layer_mse", engine=engine)
    worst = prof.ranked_layers(0)[:3]
    print(f"{len(prof.layers)} layers probed; most fp3-sensitive: {', '.join(worst)}")

    # 2. Budget sweep: plans from just above the floor to ~2x.
    floor = plan_floor_bytes(LADDER, cfg)
    print(f"\n=== budget sweep (floor {floor / 1e6:.0f} MB) ===")
    print(f"{'budget':>10} {'used MB':>8} {'mean bits':>9} {'ppl':>7}")
    best_plan = None
    for factor in (1.05, 1.25, 1.5, 1.75, 2.0):
        plan = budget_plan(prof, cfg, floor * factor)
        (cell,) = engine.run([CellSpec(model=model_name, plan=plan)])
        bits = plan_gemm_bits(plan, cfg)["lm_head"]
        used = plan_weight_bytes(plan, cfg) / 1e6
        print(f"{floor * factor / 1e6:>9.0f}M {used:>8.0f} {bits:>9.2f} {cell['ppl']:>7.2f}")
        if factor == 1.25:
            best_plan = plan

    # 3. Mixed-precision artifact: save, reload, replay.
    print("\n=== packing the 1.25x-floor plan ===")
    model = CausalLM(cfg, seed=0)
    path = Path(tempfile.mkdtemp()) / "mixed.rpro"
    artifact = save_artifact(path, model, best_plan, store=engine.store)
    print(
        f"{len(artifact.packed)} packed layers, "
        f"{artifact.packed_bytes / 1e3:.0f} KB on disk, "
        f"{artifact.mean_bits_per_weight:.2f} bits/weight"
    )
    served = InferenceEngine.from_artifact(load_artifact(path))
    replay = served.functional_replay(batch_size=4, layers=[best_plan.layers[0][0]])[0]
    print(
        f"bit-accurate replay of {replay.layer}: "
        f"{replay.pe_cycles} PE cycles, max |err| {replay.max_abs_err:.2e}"
    )

    # 4. Accelerator cost at the plan's per-layer precisions.
    accel = make_accelerator("bitmod")
    r = simulate_plan(cfg, accel, "generative", plan_gemm_bits(best_plan, cfg))
    base = simulate(cfg, make_accelerator("fp16"), "generative", 16)
    print(
        f"\nmodeled generative request: {r.time_ms:.0f} ms, "
        f"{r.energy.total_uj / 1e6:.1f} J "
        f"({base.time_ms / r.time_ms:.2f}x faster than FP16 baseline)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "opt-1.3b")
