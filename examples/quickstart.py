"""Quickstart: quantize a weight tensor with BitMoD and inspect the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import QuantConfig, quantize_tensor
from repro.hw import BitMoDPE, booth_encode, fixed_point_decompose

# ----------------------------------------------------------------------
# 1. Quantize a weight matrix with several datatypes and compare error.
# ----------------------------------------------------------------------
rng = np.random.default_rng(0)
weights = rng.standard_t(4, size=(256, 1024))  # heavy-tailed, LLM-like

print("Per-group (G=128) weight quantization, mean squared error:")
for dtype in ("int4_sym", "int4_asym", "fp4", "bitmod_fp4",
              "int3_asym", "fp3", "bitmod_fp3"):
    result = quantize_tensor(weights, QuantConfig(dtype=dtype, group_size=128))
    print(f"  {dtype:12s} mse={result.mse:.5f}  "
          f"bits/weight={result.bits_per_weight:.3f}")

# ----------------------------------------------------------------------
# 2. Look at the per-group special values Algorithm 1 selected.
# ----------------------------------------------------------------------
result = quantize_tensor(weights, QuantConfig(dtype="bitmod_fp3"))
values, counts = np.unique(result.special_values, return_counts=True)
print("\nBitMoD-FP3 special-value usage across groups:")
for v, c in zip(values, counts):
    share = 100 * c / result.special_values.size
    print(f"  SV {v:+.0f}: {share:.1f}% of groups")

# ----------------------------------------------------------------------
# 3. Decompose weights into the unified bit-serial representation and
#    run the bit-accurate PE against a float reference.
# ----------------------------------------------------------------------
print("\nBit-serial decomposition examples:")
for value, kind in ((-93, "int8"), (6.0, "fp4"), (-1.5, "fp4")):
    terms = (booth_encode(value, 8) if kind == "int8"
             else fixed_point_decompose(value))
    parts = " + ".join(
        f"({'-' if t.sign else '+'}{t.man}*2^{t.exp + t.bsig})" for t in terms
    )
    print(f"  {value:>6} -> {parts}")

pe = BitMoDPE()
codes = rng.integers(-31, 32, size=128)
acts = rng.standard_normal(128).astype(np.float16)
res = pe.group_dot([booth_encode(int(c), 6) for c in codes], acts)
ref = float(np.dot(codes, acts.astype(np.float64)))
print(f"\nPE 128-weight INT6 group dot product: {res.value:.4f} "
      f"(reference {ref:.4f}, {res.cycles} cycles)")
deq = pe.dequantize(res, sf_code=173)
print(f"Bit-serial dequantization x173: {deq.value:.2f} "
      f"(reference {ref * 173:.2f}, {deq.cycles} extra cycles)")
