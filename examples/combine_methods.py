"""Drop BitMoD datatypes into AWQ / OmniQuant / SmoothQuant (Table XI/XII).

The software methods only decide *how weights are presented* to the
quantizer; the datatype is pluggable.  This example swaps INT-Asym for
the BitMoD datatypes inside each method, on one model.

Run:  python examples/combine_methods.py
"""

from repro.eval import PerplexityEvaluator
from repro.methods import AWQ, OmniQuant, RTN, SmoothQuant, collect_calibration
from repro.models import get_model_config
from repro.quant import QuantConfig

config = get_model_config("llama-2-7b")
ev = PerplexityEvaluator(config, "wikitext")
calib = collect_calibration(ev.model)
print(f"Model {config.name}, FP16 wikitext ppl = {ev.fp16_ppl:.2f}\n")

print(f"{'method':14s} {'int3_asym':>10s} {'bitmod_fp3':>11s}")
for label, factory in (("RTN", RTN), ("AWQ", AWQ), ("OmniQuant", OmniQuant)):
    row = [f"{label:14s}"]
    for dtype in ("int3_asym", "bitmod_fp3"):
        method = factory(QuantConfig(dtype=dtype))
        ppl = ev.evaluate_model(method.quantize_model(ev.model, calib)).ppl
        row.append(f"{ppl:10.2f}")
    print(" ".join(row))

print("\nWith SmoothQuant INT8 activations (Table XII):")
for dtype in ("int3_asym", "bitmod_fp3"):
    sq = SmoothQuant(QuantConfig(dtype=dtype), act_bits=8)
    ppl = ev.evaluate_model(sq.quantize_model(ev.model, calib)).ppl
    print(f"  {dtype:12s} ppl = {ppl:.2f}")
