"""Quantize a full (substrate) LLM and evaluate perplexity + accuracy.

Reproduces, for one model, the workflow behind the paper's Tables VI
and VII: quantize every decoder linear with a given datatype and
evaluate on generative (perplexity proxy) and discriminative tasks.

Run:  python examples/quantize_llm.py [model-name]
"""

import sys

from repro.eval import DiscriminativeEvaluator, PerplexityEvaluator
from repro.models import get_model_config
from repro.quant import QuantConfig, quantize_tensor

model_name = sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b"
config = get_model_config(model_name)
print(f"Model: {config.name} ({config.params_billions:.1f}B params full-size, "
      f"simulated at hidden={config.sim_hidden})")

wiki = PerplexityEvaluator(config, "wikitext")
hella = DiscriminativeEvaluator(config, "hellaswag", n_items=96)
print(f"FP16: wikitext ppl={wiki.fp16_ppl:.2f}, "
      f"hellaswag acc={hella.fp16_accuracy * 100:.1f}%\n")

print(f"{'dtype':12s} {'wiki_ppl':>9s} {'hella_acc':>10s}")
for dtype in ("int6_sym", "int4_asym", "bitmod_fp4", "int3_asym", "bitmod_fp3"):
    qcfg = QuantConfig(dtype=dtype, group_size=128)

    def quantizer(_name, w):
        return quantize_tensor(w, qcfg).w_deq

    ppl = wiki.evaluate_quantizer(quantizer).ppl
    acc = hella.evaluate_quantizer(quantizer)
    print(f"{dtype:12s} {ppl:9.2f} {acc:9.1f}%")

print("\nBitMoD holds quality at 3 bits where integer quantization slips —")
print("the paper's Table VI/VII result, on the synthetic substrate.")
