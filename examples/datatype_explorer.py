"""Explore the datatype zoo and program custom special values.

The BitMoD decoder keeps its special values in a programmable register
file (Section IV-A), so the datatype family is open-ended.  This
example prints the level grids of the built-in datatypes and then
searches for the best special-value set on a custom weight
distribution — the workflow a user would follow to tune BitMoD for a
new model family.

Run:  python examples/datatype_explorer.py
"""

import numpy as np

from repro.dtypes import BitMoDType, get_dtype
from repro.quant import QuantConfig, quantize_tensor

# ----------------------------------------------------------------------
# 1. The built-in grids.
# ----------------------------------------------------------------------
print("Built-in datatype grids (code space):")
for name in ("fp3", "fp4", "flint4", "ant3"):
    dt = get_dtype(name)
    levels = ", ".join(f"{v:g}" for v in dt.grid)
    print(f"  {name:8s} [{levels}]")

bm = get_dtype("bitmod_fp3")
print(f"  bitmod_fp3 = fp3 + one of {bm.special_values} per group "
      f"({bm.selector_bits:.0f} selector bits)")

# ----------------------------------------------------------------------
# 2. Search custom special-value pairs for a skewed weight distribution.
# ----------------------------------------------------------------------
rng = np.random.default_rng(7)
weights = rng.standard_t(5, size=(128, 1024))
weights += np.repeat(rng.normal(0, 0.6, size=(128, 8)), 128, axis=1)  # skewed groups

print("\nCustom FP3 special-value search on skewed weights (lower = better):")
results = []
for sv in (3.0, 4.0, 5.0, 6.0, 7.0, 8.0):
    dtype = BitMoDType(bits=3, special_values=(-3.0, 3.0, -sv, sv),
                       name=f"fp3_sv{sv:g}")
    mse = quantize_tensor(weights, QuantConfig(dtype=dtype)).mse
    results.append((mse, sv))
    print(f"  {{+-3, +-{sv:g}}}: mse = {mse:.5f}")

best = min(results)
print(f"\nBest asymmetric extension for this distribution: +-{best[1]:g}")
print("(The paper lands on +-6 for its LLM suite — Fig. 3 / Table IX.)")
